//! Server observability: latency histograms and the stats snapshot.
//!
//! Latencies are recorded in simulated nanoseconds (see
//! [`crate::clock::SimClock`]) into a geometric histogram — fixed
//! memory, O(1) record, and quantiles accurate to one bucket width
//! (~19%, four buckets per octave). That resolution is deliberate: the
//! serving experiments gate on p99 *regressions of 25%+*, so the bucket
//! grid is finer than the gate and the whole pipeline stays exactly
//! reproducible across hosts.

use crate::cache::CacheStats;

/// Buckets per factor-of-two of latency.
const BUCKETS_PER_OCTAVE: usize = 4;
/// Total bucket count: covers 1 µs up to ~9 h above the base.
const NUM_BUCKETS: usize = 128;
/// Lower edge of bucket 0 (ns) — everything faster lands in bucket 0.
const BASE_NS: f64 = 1_000.0;

/// A geometric latency histogram over simulated nanoseconds.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// The bucket a latency falls in.
    fn bucket_of(ns: u64) -> usize {
        if (ns as f64) <= BASE_NS {
            return 0;
        }
        let octaves = (ns as f64 / BASE_NS).log2();
        ((octaves * BUCKETS_PER_OCTAVE as f64) as usize).min(NUM_BUCKETS - 1)
    }

    /// Upper edge of a bucket (ns).
    fn bucket_upper_ns(bucket: usize) -> f64 {
        BASE_NS * 2f64.powf((bucket + 1) as f64 / BUCKETS_PER_OCTAVE as f64)
    }

    /// Records one latency observation.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency (ns); 0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// The `q`-quantile latency in nanoseconds (bucket upper edge,
    /// clamped to the observed maximum); 0 when empty. `q` in `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_ns(b).min(self.max_ns as f64);
            }
        }
        self.max_ns as f64
    }
}

/// Per-tenant request accounting, reported inside [`ServerStats`].
///
/// The books balance per tenant: `submitted = shed + admitted` and
/// `admitted = completed + dropped + still-queued`. `shed` counts
/// refusals at the door (admission control or invalid input), `dropped`
/// counts admitted requests that later died at dispatch (expired
/// deadline, backend unavailable, hot-swap invalidation).
#[derive(Clone, Debug)]
pub struct TenantSnapshot {
    /// Which tenant this row describes.
    pub tenant: crate::admission::TenantId,
    /// Requests this tenant offered (admitted + shed).
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests refused at the door.
    pub shed: u64,
    /// Admitted requests dropped at dispatch.
    pub dropped: u64,
    /// Completions whose feature row came from the cache.
    pub cache_hits: u64,
    /// Mean response latency (simulated ms).
    pub mean_latency_ms: f64,
    /// p50 response latency (simulated ms).
    pub p50_ms: f64,
    /// p99 response latency (simulated ms).
    pub p99_ms: f64,
}

impl TenantSnapshot {
    /// Fraction of offered requests that were answered with a
    /// prediction; 1.0 when the tenant offered nothing.
    pub fn availability(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.completed as f64 / self.submitted as f64
        }
    }
}

/// A point-in-time snapshot of everything the server counts.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Requests admitted past the queue door.
    pub submitted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Rejections at the hard queue bound.
    pub rejected_queue_full: u64,
    /// Rejections on the global-shed rung (last resort).
    pub rejected_overloaded: u64,
    /// Rejections of over-share tenants on the first brownout rung.
    pub rejected_over_share: u64,
    /// Non-deadline requests deferred on the second brownout rung.
    pub rejected_deferred: u64,
    /// Admitted requests dropped at dispatch on an expired deadline.
    pub rejected_deadline: u64,
    /// Requests with unservable inputs: refused at submit (wrong
    /// length, non-finite or out-of-range coordinates) or invalidated
    /// at dispatch by a hot-swap that changed the qubit count.
    pub rejected_invalid: u64,
    /// Requests shed with [`Rejected::BackendUnavailable`] — the pool
    /// failed their rows terminally and local fallback is disabled.
    ///
    /// [`Rejected::BackendUnavailable`]: crate::admission::Rejected::BackendUnavailable
    pub rejected_backend: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Rows served across all batches (= completed).
    pub batch_rows: u64,
    /// Unique data points simulated (cache misses actually computed).
    pub unique_simulations: u64,
    /// Micro-batches served through a lower rung of the degradation
    /// ladder (pool failed → local fallback computed the rows).
    pub degraded_batches: u64,
    /// Failed pool submissions that were retried (backend pool).
    pub pool_retries: u64,
    /// Jobs the pool moved to a different device after local failures.
    pub pool_failovers: u64,
    /// Hedge replicas the pool launched against stragglers.
    pub hedges_launched: u64,
    /// Hedges that beat their primary.
    pub hedges_won: u64,
    /// Per-device circuit-breaker trips into quarantine.
    pub breaker_trips: u64,
    /// Feature-cache counters.
    pub cache: CacheStats,
    /// Per-tenant accounting rows, ordered by tenant id. Empty until
    /// the first tenant-attributed event.
    pub per_tenant: Vec<TenantSnapshot>,
    /// Simulated time elapsed since server construction (ns).
    pub sim_elapsed_ns: u64,
    /// Completed rows per simulated second.
    pub throughput_rows_per_s: f64,
    /// Mean response latency (simulated ms).
    pub mean_latency_ms: f64,
    /// p50 response latency (simulated ms).
    pub p50_ms: f64,
    /// p95 response latency (simulated ms).
    pub p95_ms: f64,
    /// p99 response latency (simulated ms).
    pub p99_ms: f64,
}

impl ServerStats {
    /// Mean rows per dispatched micro-batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_rows as f64 / self.batches as f64
        }
    }

    /// Total rejections of any kind.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_queue_full
            + self.rejected_overloaded
            + self.rejected_over_share
            + self.rejected_deferred
            + self.rejected_deadline
            + self.rejected_invalid
            + self.rejected_backend
    }

    /// The accounting row for one tenant, if it has any activity.
    pub fn tenant(&self, tenant: crate::admission::TenantId) -> Option<&TenantSnapshot> {
        self.per_tenant.iter().find(|t| t.tenant == tenant)
    }

    /// Whether any fault-recovery machinery activated: retries,
    /// failovers, hedges, breaker trips, degraded batches, or
    /// backend sheds. The healthy-path benchmarks assert this is
    /// `false` to guard against accidental fault-path activation.
    pub fn any_fault_activity(&self) -> bool {
        self.pool_retries
            + self.pool_failovers
            + self.hedges_launched
            + self.hedges_won
            + self.breaker_trips
            + self.degraded_batches
            + self.rejected_backend
            > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.99), 0.0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn quantiles_bracket_observations() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000_000); // 1 ms
        }
        h.record(100_000_000); // one 100 ms outlier
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        let p999 = h.quantile_ns(0.999);
        // One-bucket accuracy: within 19% above the true value.
        assert!((1.0..=1.2).contains(&(p50 / 1_000_000.0)), "p50 {p50}");
        assert!((1.0..=1.2).contains(&(p99 / 1_000_000.0)), "p99 {p99}");
        assert!(p999 >= 99_000_000.0, "p999 must see the outlier: {p999}");
        let mean = h.mean_ns();
        assert!((mean - (99.0 * 1e6 + 1e8) / 100.0).abs() < 1.0);
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let mut h = LatencyHistogram::new();
        h.record(3_000);
        assert!(h.quantile_ns(1.0) <= 3_000.0);
    }

    #[test]
    fn tiny_latencies_land_in_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(999);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(0.5) <= LatencyHistogram::bucket_upper_ns(0));
    }
}

//! Integration tests for multi-tenant overload robustness: EDF batch
//! formation, weighted-fair admission with the brownout ladder,
//! per-tenant accounting, trace replay, and the composed
//! overload-plus-outage chaos scenario. Runs under CI's
//! `POSTVAR_NUM_THREADS = 1, 2, 4` matrix like the rest of the serving
//! suite — tenant isolation must not depend on the thread count.

use pvqnn::features::FeatureBackend;
use pvqnn::model::RegressorMode;
use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
use serve::{
    replay_trace, synthesize_trace, BrownoutLevel, FeatureEngine, Prediction, RateProfile,
    Rejected, Server, ServerConfig, TenantId, TenantLoad,
};

use serve::demo_catalogue as catalogue;

fn regressor() -> PostVarRegressor {
    let data = catalogue(20);
    let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin()).collect();
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6))
}

/// The EDF satellite, pinned: a tight-deadline request admitted *after*
/// a burst of slack ones jumps the queue and is served in the very next
/// micro-batch, while the burst's tail keeps waiting.
#[test]
fn tight_deadline_request_overtakes_a_slack_burst() {
    let server = Server::new(ServerConfig {
        max_batch: 4,
        ..Default::default()
    });
    server.deploy(regressor());
    let points = catalogue(9);
    // Eight slack requests (no deadline), then one tight one behind them.
    let slack: Vec<_> = (0..8)
        .map(|i| {
            server
                .submit_with_budget(points[i].clone(), None)
                .expect("admitted")
        })
        .collect();
    let tight = server
        .submit_with_budget(points[8].clone(), Some(1_000_000))
        .expect("admitted");
    assert_eq!(server.step(), 4, "one full micro-batch dispatched");
    let served = tight.try_take().expect("tight deadline served first");
    assert!(served.is_ok(), "served, not deadline-dropped");
    // EDF ties (no deadline) break FIFO: the burst's head rode along,
    // its tail did not.
    assert!(slack[0].try_take().is_some(), "burst head filled the batch");
    assert!(slack[7].try_take().is_none(), "burst tail still queued");
    server.drain();
    for h in slack.into_iter().skip(1) {
        assert!(h.wait().is_ok());
    }
}

/// The isolation acceptance property at test scale: a tenant flooding
/// far past its fair share is shed at the door while an equal-weight
/// well-behaved tenant keeps 100% availability — and every prediction
/// the well-behaved tenant receives is bit-for-bit what a lone
/// `predict` call returns.
#[test]
fn flooding_tenant_cannot_starve_a_well_behaved_one() {
    let model = regressor();
    let server = Server::new(ServerConfig {
        max_batch: 8,
        queue_capacity: 32,
        high_water: 16,
        ..Default::default()
    });
    server.deploy(model.clone());
    let good = TenantId(1);
    let flood = TenantId(2);
    server.set_tenant_weight(good, 1);
    server.set_tenant_weight(flood, 1);
    let points = catalogue(12);
    let mut good_handles = Vec::new();
    let mut flood_sheds = 0u64;
    for round in 0..30 {
        // The flooder offers 8 requests per round, the good tenant 1.
        for i in 0..8 {
            match server.submit_for(flood, points[(round + i) % 12].clone()) {
                Ok(_) => {}
                Err(Rejected::TenantOverShare { tenant, .. }) => {
                    assert_eq!(tenant, flood, "only the flooder is shed");
                    flood_sheds += 1;
                }
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        }
        let point = round % 12;
        let handle = server
            .submit_for(good, points[point].clone())
            .unwrap_or_else(|e| panic!("well-behaved tenant shed in round {round}: {e}"));
        good_handles.push((point, handle));
        server.step();
    }
    server.drain();
    assert!(flood_sheds > 0, "the flood must actually trip the ladder");
    for (point, handle) in good_handles {
        let response = handle.wait().expect("well-behaved request served");
        assert_eq!(
            response.prediction,
            Prediction::Value(model.predict(std::slice::from_ref(&points[point]))[0]),
            "bit-for-bit identical to a lone predict"
        );
    }
    let stats = server.stats();
    let g = stats.tenant(good).expect("good tenant accounted");
    assert_eq!(g.submitted, 30);
    assert_eq!(g.completed, 30);
    assert_eq!(g.shed, 0);
    assert_eq!(g.availability(), 1.0);
    let f = stats.tenant(flood).expect("flooder accounted");
    assert_eq!(f.shed, flood_sheds);
    assert!(f.completed > 0, "the flooder still gets its fair share");
}

/// The full brownout ladder, walked at server level: over-share sheds
/// first, slack traffic is deferred next, global shed is the last rung
/// — each with its own typed rejection and counter — and draining
/// releases the rungs back to normal.
#[test]
fn brownout_ladder_walks_all_rungs_and_releases() {
    let server = Server::new(ServerConfig {
        max_batch: 16,
        queue_capacity: 64,
        high_water: 16, // low 8, defer 40, shed 58
        ..Default::default()
    });
    server.deploy(regressor());
    let points = catalogue(8);
    // 45 singleton tenants: each is under its fair share, so all are
    // admitted even after the high-water rung trips at depth 16.
    for t in 1..=45u32 {
        server
            .submit_for(TenantId(t), points[t as usize % 8].clone())
            .unwrap_or_else(|e| panic!("fresh tenant {t} under share must be admitted: {e}"));
    }
    assert_eq!(server.queue_depth(), 45);
    assert_eq!(server.brownout_level(), BrownoutLevel::DeferSlack);
    // Deep brownout: deadline-free traffic is deferred even for a
    // tenant that is under its share.
    assert!(matches!(
        server.submit_as(TenantId(100), points[0].clone(), None),
        Err(Rejected::Deferred { .. })
    ));
    // Push to the last rung.
    for t in 46..=58u32 {
        server
            .submit_for(TenantId(t), points[t as usize % 8].clone())
            .unwrap_or_else(|e| panic!("tenant {t}: {e}"));
    }
    assert_eq!(server.brownout_level(), BrownoutLevel::GlobalShed);
    assert!(matches!(
        server.submit_for(TenantId(101), points[0].clone()),
        Err(Rejected::Overloaded { .. })
    ));
    let stats = server.stats();
    assert_eq!(stats.rejected_deferred, 1);
    assert_eq!(stats.rejected_overloaded, 1);
    // Draining walks the ladder back down and reopens admission.
    server.drain();
    assert_eq!(server.brownout_level(), BrownoutLevel::Normal);
    assert!(server
        .submit_as(TenantId(100), points[0].clone(), None)
        .is_ok());
    server.drain();
}

/// Per-tenant accounting invariant: for every tenant,
/// `submitted = shed + admitted` and `admitted = completed + dropped`
/// once the queue is drained — and the per-tenant rows sum to the
/// global counters.
#[test]
fn per_tenant_books_balance() {
    let server = Server::new(ServerConfig {
        max_batch: 4,
        queue_capacity: 16,
        high_water: 8,
        default_deadline_ns: 2_000_000, // 2 ms: some requests will expire
        ..Default::default()
    });
    server.deploy(regressor());
    let points = catalogue(10);
    for round in 0..12 {
        for t in 1..=3u32 {
            // Uneven offered load: tenant 3 floods.
            let n = if t == 3 { 5 } else { 1 };
            for i in 0..n {
                let _ =
                    server.submit_for(TenantId(t), points[(round + i + t as usize) % 10].clone());
            }
        }
        server.step();
    }
    server.drain();
    let stats = server.stats();
    assert!(!stats.per_tenant.is_empty());
    let mut sum_completed = 0;
    for t in &stats.per_tenant {
        assert_eq!(
            t.submitted,
            t.shed + t.admitted,
            "door books for {}",
            t.tenant
        );
        assert_eq!(
            t.admitted,
            t.completed + t.dropped,
            "queue books for {} after drain",
            t.tenant
        );
        assert!(t.cache_hits <= t.completed);
        sum_completed += t.completed;
    }
    assert_eq!(sum_completed, stats.completed, "tenant rows sum to global");
    let flooder = stats.tenant(TenantId(3)).unwrap();
    assert!(flooder.shed > 0, "the flooding tenant was shed");
}

/// Trace replay end to end: a synthesized two-tenant burst trace
/// replays deterministically, every served prediction matches the
/// standalone reference bit-for-bit, the monitor emits a time series,
/// and offered arrivals are fully accounted for.
#[test]
fn trace_replay_is_deterministic_and_bitwise_faithful() {
    let model = regressor();
    let points = catalogue(16);
    let expected: Vec<Prediction> = points
        .iter()
        .map(|p| Prediction::Value(model.predict(std::slice::from_ref(p))[0]))
        .collect();
    let loads = [
        TenantLoad {
            tenant: TenantId(1),
            profile: RateProfile::Constant {
                rate_per_s: 3_000.0,
            },
            zipf_s: 1.1,
            deadline_ns: Some(20_000_000),
        },
        TenantLoad {
            tenant: TenantId(2),
            profile: RateProfile::FlashCrowd {
                base_per_s: 500.0,
                peak_per_s: 30_000.0,
                at_ns: 50_000_000,
                decay_ns: 10_000_000,
            },
            zipf_s: 0.5,
            deadline_ns: None,
        },
    ];
    let trace = synthesize_trace(&loads, 150_000_000, points.len(), 42);
    assert!(!trace.is_empty());
    let run = || {
        let server = Server::new(ServerConfig {
            queue_capacity: 64,
            high_water: 32,
            ..Default::default()
        });
        server.deploy(model.clone());
        replay_trace(&server, &points, &trace, 10_000_000, Some(&expected))
    };
    let a = run();
    assert_eq!(a.offered, trace.len() as u64);
    assert_eq!(a.mismatches, 0, "batching must be invisible in outputs");
    assert_eq!(
        a.offered,
        a.completed + a.shed + a.dropped,
        "every arrival accounted"
    );
    assert!(a.completed > 0);
    assert!(!a.samples.is_empty(), "monitor produced a time series");
    assert!(a.goodput_rows_per_s > 0.0);
    let b = run();
    assert_eq!(a.completed, b.completed, "replay is deterministic");
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.samples.len(), b.samples.len());
}

/// The composed chaos scenario at test scale: a tenant flood *while*
/// the backend pool is in a device outage. The degradation ladder
/// (local fallback) and the fairness ladder (brownout shedding) must
/// compose — zero panics, typed sheds only, and the well-behaved
/// tenant's predictions still bit-for-bit correct.
#[test]
fn overload_during_backend_outage_stays_typed_and_correct() {
    use hpcq::{FaultPolicy, FaultSchedule, QpuConfig, QpuPool, RetryPolicy, SchedulePolicy};
    use std::sync::Mutex;
    let model = regressor();
    // Both devices go down 1 ns in: after the warm-up batch every miss
    // must ride the degraded local-fallback rung.
    let cfg = QpuConfig {
        faults: FaultSchedule::none().with_outage(1, u64::MAX),
        ..Default::default()
    };
    let pool =
        QpuPool::homogeneous(2, cfg, SchedulePolicy::WorkStealing).with_fault_policy(FaultPolicy {
            retry: RetryPolicy {
                max_attempts_total: 2,
                ..Default::default()
            },
            ..Default::default()
        });
    let server = Server::with_engine(
        ServerConfig {
            max_batch: 8,
            queue_capacity: 32,
            high_water: 16,
            degraded_local_fallback: true,
            ..Default::default()
        },
        FeatureEngine::Pool(Mutex::new(pool)),
    );
    server.deploy(model.clone());
    let good = TenantId(1);
    let flood = TenantId(2);
    server.set_tenant_weight(good, 1);
    server.set_tenant_weight(flood, 1);
    let points = catalogue(10);
    let warm = server.submit_for(good, points[0].clone()).unwrap();
    server.drain();
    warm.wait().expect("warm-up while devices are up");
    // Outage now active; flood while it is in progress.
    let mut good_handles = Vec::new();
    for round in 0..20 {
        for i in 0..8 {
            match server.submit_for(flood, points[(round + i) % 10].clone()) {
                Ok(_) | Err(Rejected::TenantOverShare { .. }) => {}
                Err(other) => panic!("untyped or unexpected shed: {other:?}"),
            }
        }
        let point = round % 10;
        good_handles.push((
            point,
            server
                .submit_for(good, points[point].clone())
                .expect("well-behaved tenant admitted through the chaos"),
        ));
        server.step();
    }
    server.drain();
    for (point, handle) in good_handles {
        let response = handle.wait().expect("served despite outage + flood");
        // Rows computed through the degraded fallback are bit-for-bit
        // the local engine's; the warm-up row was pool-computed, which
        // matches local to rounding (kernel summation orders differ) —
        // same bound as the healthy-pool serving tests.
        let lone = model.predict(std::slice::from_ref(&points[point]))[0];
        assert!(
            (response.prediction.as_f64() - lone).abs() < 1e-10,
            "served {} vs lone {lone}",
            response.prediction.as_f64()
        );
    }
    let stats = server.stats();
    assert!(stats.degraded_batches > 0, "the outage was actually hit");
    assert!(stats.rejected_over_share > 0, "the flood was actually shed");
    assert_eq!(stats.rejected_backend, 0, "fallback served every miss");
    assert_eq!(stats.tenant(good).unwrap().availability(), 1.0);
}

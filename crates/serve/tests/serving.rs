//! Integration tests for the serving subsystem — the acceptance
//! properties: micro-batched predictions bit-for-bit equal to
//! one-at-a-time `predict`, cache-hit accounting, hot-swap consistency,
//! and shedding under overload. The whole suite runs under CI's
//! `POSTVAR_NUM_THREADS = 1, 2, 4` matrix, which is what pins the
//! bit-for-bit guarantee across thread counts.

use pvqnn::features::FeatureBackend;
use pvqnn::model::RegressorMode;
use pvqnn::{FeatureGenerator, PostVarClassifier, PostVarRegressor, Strategy};
use serve::{
    run_closed_loop, spawn_worker, FeatureEngine, LoadGenConfig, Prediction, Rejected, Server,
    ServerConfig,
};
use std::sync::Arc;

use serve::demo_catalogue as catalogue;

fn regressor(backend: FeatureBackend) -> PostVarRegressor {
    let data = catalogue(20);
    let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin()).collect();
    let generator = FeatureGenerator::new(Strategy::observable_construction(4, 1), backend);
    PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6))
}

fn classifier() -> PostVarClassifier {
    let data = catalogue(20);
    let labels: Vec<f64> = (0..20).map(|i| (i % 2) as f64).collect();
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    PostVarClassifier::fit(
        generator,
        &data,
        &labels,
        ml::LogisticConfig {
            epochs: 60,
            ..Default::default()
        },
    )
}

/// The headline guarantee: a micro-batched, cached, deadline-managed
/// server returns *exactly* the prediction a one-at-a-time `predict`
/// call produces — for the exact and the finite-shot backend, with
/// repeated (cache-hitting) points in the stream, across whatever
/// thread count this test process was pinned to.
#[test]
fn microbatched_predictions_match_one_at_a_time_bitwise() {
    for backend in [
        FeatureBackend::Exact,
        FeatureBackend::Shots {
            shots: 96,
            seed: 11,
        },
    ] {
        let model = regressor(backend);
        let server = Server::new(ServerConfig {
            max_batch: 7,
            ..Default::default()
        });
        server.deploy(model.clone());
        let points = catalogue(12);
        // 40 requests over 12 points: plenty of repeats → cache hits.
        let xs: Vec<&Vec<f64>> = (0..40).map(|i| &points[(i * 5) % 12]).collect();
        let handles: Vec<_> = xs
            .iter()
            .map(|x| server.submit((*x).clone()).expect("admitted"))
            .collect();
        server.drain();
        for (x, handle) in xs.iter().zip(handles) {
            let response = handle.wait().expect("served");
            let lone = model.predict(&[(*x).clone()])[0];
            assert_eq!(
                response.prediction,
                Prediction::Value(lone),
                "backend {backend:?}: batched prediction must equal lone predict bit-for-bit"
            );
        }
    }
}

#[test]
fn classifier_served_probabilities_match_bitwise() {
    let model = classifier();
    let server = Server::new(ServerConfig {
        max_batch: 5,
        ..Default::default()
    });
    server.deploy(model.clone());
    let points = catalogue(9);
    let handles: Vec<_> = (0..27)
        .map(|i| server.submit(points[(i * 2) % 9].clone()).unwrap())
        .collect();
    server.drain();
    for (i, handle) in handles.into_iter().enumerate() {
        let x = &points[(i * 2) % 9];
        let response = handle.wait().expect("served");
        let lone = model.predict_proba(std::slice::from_ref(x))[0];
        assert_eq!(response.prediction, Prediction::Probability(lone));
    }
}

/// Cache accounting: n distinct points requested r times each must cost
/// exactly n simulations; every repeat is a hit; small capacities evict.
#[test]
fn cache_hit_accounting_is_exact() {
    let model = regressor(FeatureBackend::Exact);
    let server = Server::new(ServerConfig {
        max_batch: 4,
        cache_capacity: 64,
        ..Default::default()
    });
    server.deploy(model);
    let points = catalogue(10);
    // Round-robin 30 requests over 10 points, batches of 4.
    for i in 0..30 {
        let _ = server.submit(points[i % 10].clone()).unwrap();
    }
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.completed, 30);
    assert_eq!(
        stats.unique_simulations, 10,
        "one simulation per unique point"
    );
    assert_eq!(stats.cache.misses, 10);
    assert_eq!(stats.cache.hits, 20);
    assert_eq!(stats.cache.evictions, 0);
    assert_eq!(stats.cache.len, 10);
    assert!((stats.cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);

    // A capacity-4 cache under the same round-robin stream thrashes:
    // every lookup misses (the classic LRU worst case), but dedup within
    // each batch still bounds simulations by the requests issued.
    let tiny = Server::new(ServerConfig {
        max_batch: 4,
        cache_capacity: 4,
        ..Default::default()
    });
    tiny.deploy(regressor(FeatureBackend::Exact));
    for i in 0..20 {
        let _ = tiny.submit(points[i % 10].clone()).unwrap();
    }
    tiny.drain();
    let s = tiny.stats();
    assert!(s.cache.evictions > 0, "capacity pressure must evict");
    assert_eq!(s.cache.len, 4, "cache pinned at capacity");
    assert_eq!(
        s.cache.hits + s.cache.misses,
        20,
        "every request consults the cache"
    );
}

/// Duplicate points *within one batch* share a single simulation even
/// with the cache disabled.
#[test]
fn within_batch_dedup_shares_simulations() {
    let model = regressor(FeatureBackend::Exact);
    let server = Server::new(ServerConfig {
        max_batch: 8,
        cache_capacity: 0,
        ..Default::default()
    });
    server.deploy(model.clone());
    let x = catalogue(1).pop().unwrap();
    let handles: Vec<_> = (0..8).map(|_| server.submit(x.clone()).unwrap()).collect();
    assert_eq!(server.step(), 8, "one batch serves all 8");
    let want = model.predict(&[x])[0];
    for h in handles {
        let r = h.wait().unwrap();
        assert_eq!(r.prediction, Prediction::Value(want));
        assert!(!r.cache_hit, "cache disabled: these are shared misses");
    }
    let stats = server.stats();
    assert_eq!(
        stats.unique_simulations, 1,
        "8 identical requests, 1 simulation"
    );
}

/// Hot-swap: batches formed before a deploy serve the old version;
/// batches formed after serve the new one; rollback re-activates v1.
#[test]
fn hot_swap_serves_old_version_until_drained() {
    let v1_model = regressor(FeatureBackend::Exact);
    let v2_model = regressor(FeatureBackend::Shots { shots: 64, seed: 5 });
    let server = Server::new(ServerConfig {
        max_batch: 2,
        cache_capacity: 0, // rows must come from each version's own backend
        ..Default::default()
    });
    let v1 = server.deploy(v1_model.clone());
    let x = &catalogue(3)[2];

    let before = server.submit(x.clone()).unwrap();
    server.step(); // batch formed and served under v1
    let v2 = server.deploy(v2_model.clone());
    let after = server.submit(x.clone()).unwrap();
    server.step();

    let r1 = before.wait().unwrap();
    assert_eq!(r1.model, v1);
    assert_eq!(
        r1.prediction,
        Prediction::Value(v1_model.predict(std::slice::from_ref(x))[0])
    );
    let r2 = after.wait().unwrap();
    assert_eq!(r2.model, v2);
    assert_eq!(
        r2.prediction,
        Prediction::Value(v2_model.predict(std::slice::from_ref(x))[0])
    );
    assert_ne!(
        r1.prediction, r2.prediction,
        "the two versions genuinely differ"
    );

    // Rollback.
    assert!(server.registry().activate(v1));
    let rolled = server.submit(x.clone()).unwrap();
    server.drain();
    assert_eq!(rolled.wait().unwrap().model, v1);
}

/// The feature cache is segmented by generator fingerprint: versions
/// sharing a generator reuse each other's rows, and a hot-swap that
/// changes the quantum stage looks up a different segment instead of
/// serving stale rows. This test pins the reuse half; the next one pins
/// the isolation half.
#[test]
fn hot_swap_with_shared_generator_reuses_cache_safely() {
    let data = catalogue(20);
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    let y1: Vec<f64> = (0..20).map(|i| i as f64).collect();
    let y2: Vec<f64> = (0..20).map(|i| -(i as f64)).collect();
    let m1 = PostVarRegressor::fit(generator.clone(), &data, &y1, RegressorMode::Ridge(1e-6));
    let m2 = PostVarRegressor::fit(generator, &data, &y2, RegressorMode::Ridge(1e-6));
    let server = Server::new(ServerConfig::default());
    server.deploy(m1);
    let x = &data[4];
    let h1 = server.submit(x.clone()).unwrap();
    server.drain();
    let _ = h1.wait().unwrap();
    server.deploy(m2.clone());
    let h2 = server.submit(x.clone()).unwrap();
    server.drain();
    let r2 = h2.wait().unwrap();
    assert!(r2.cache_hit, "same generator → row reused across versions");
    assert_eq!(
        r2.prediction,
        Prediction::Value(m2.predict(std::slice::from_ref(x))[0])
    );
}

/// Deploying a model whose *generator* differs (here: backend changed
/// from Exact to Shots) must not serve the old generator's rows — the
/// new version's predictions still match its own lone `predict`
/// bit-for-bit because its fingerprint probes a fresh cache segment.
#[test]
fn generator_changing_hot_swap_serves_from_own_segment() {
    let exact = regressor(FeatureBackend::Exact);
    let shots = regressor(FeatureBackend::Shots { shots: 64, seed: 5 });
    let server = Server::new(ServerConfig::default());
    server.deploy(exact);
    let x = &catalogue(3)[1];
    let warm = server.submit(x.clone()).unwrap();
    server.drain();
    assert!(warm.wait().is_ok());

    server.deploy(shots.clone());
    let h = server.submit(x.clone()).unwrap();
    server.drain();
    let r = h.wait().unwrap();
    assert!(!r.cache_hit, "new generator's segment starts cold");
    assert_eq!(
        r.prediction,
        Prediction::Value(shots.predict(std::slice::from_ref(x))[0]),
        "served row must come from the new generator"
    );
    // And the new generator's segment warms up.
    let h2 = server.submit(x.clone()).unwrap();
    server.drain();
    assert!(h2.wait().unwrap().cache_hit);
}

/// Segmentation (rather than a whole-cache flush) means a rollback to a
/// previously deployed generator finds its rows still warm: deploy v1,
/// warm it, hot-swap to a different generator, roll back — the original
/// point serves as a cache hit and still matches v1's lone `predict`
/// bit-for-bit.
#[test]
fn rollback_to_previous_generator_finds_segment_warm() {
    let exact = regressor(FeatureBackend::Exact);
    let shots = regressor(FeatureBackend::Shots { shots: 64, seed: 5 });
    let server = Server::new(ServerConfig::default());
    let v1 = server.deploy(exact.clone());
    let x = &catalogue(3)[2];
    let warm = server.submit(x.clone()).unwrap();
    server.drain();
    assert!(!warm.wait().unwrap().cache_hit);

    // Swap to a different generator, touching the same point.
    server.deploy(shots);
    let other = server.submit(x.clone()).unwrap();
    server.drain();
    assert!(!other.wait().unwrap().cache_hit);

    // Roll back: v1's segment survived the swap.
    assert!(server.registry().activate(v1));
    let rolled = server.submit(x.clone()).unwrap();
    server.drain();
    let r = rolled.wait().unwrap();
    assert!(r.cache_hit, "rollback must find its old segment warm");
    assert_eq!(
        r.prediction,
        Prediction::Value(exact.predict(std::slice::from_ref(x))[0])
    );
}

/// A hot-swap that changes the qubit count makes queued requests
/// invalid for the dispatching model: they get a typed rejection at
/// dispatch instead of panicking the batcher thread.
#[test]
fn qubit_count_hot_swap_rejects_queued_requests_typed() {
    let four_qubit = regressor(FeatureBackend::Exact);
    // A 3-qubit model invalidates the catalogue's 16-coordinate inputs
    // (16 % 3 != 0).
    let data3: Vec<Vec<f64>> = (0..12)
        .map(|i| (0..12).map(|j| 0.2 + 0.1 * ((i + j) % 7) as f64).collect())
        .collect();
    let y3: Vec<f64> = (0..12).map(|i| i as f64 * 0.2).collect();
    let three_qubit = PostVarRegressor::fit(
        FeatureGenerator::new(
            Strategy::observable_construction(3, 1),
            FeatureBackend::Exact,
        ),
        &data3,
        &y3,
        RegressorMode::Ridge(1e-6),
    );
    let server = Server::new(ServerConfig::default());
    server.deploy(four_qubit);
    let queued = server.submit(catalogue(1).pop().unwrap()).unwrap(); // 16 coords, valid for 4 qubits
    server.deploy(three_qubit); // 16 % 3 != 0 → queued request now invalid
    server.drain();
    assert!(
        matches!(
            queued.wait(),
            Err(Rejected::InvalidInput { len: 16, qubits: 3 })
        ),
        "dispatch-time validation must reject, not panic"
    );
    let stats = server.stats();
    assert_eq!(
        stats.rejected_invalid, 1,
        "dispatch-time invalidation is accounted"
    );
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected_invalid,
        "the books balance: every admitted request is either completed or counted rejected"
    );
}

/// drain() must dispatch *everything* even when an entire micro-batch
/// expires on its deadlines (a zero-served batch is not an empty queue).
#[test]
fn drain_survives_whole_batches_expiring() {
    let server = Server::new(ServerConfig {
        max_batch: 2,
        ..Default::default()
    });
    server.deploy(regressor(FeatureBackend::Exact));
    let x = catalogue(1).pop().unwrap();
    let handles: Vec<_> = (0..6)
        .map(|_| server.submit_with_budget(x.clone(), Some(1)).unwrap())
        .collect();
    let fresh = server.submit_with_budget(x.clone(), None).unwrap();
    server.clock().advance_ns(1_000_000); // expire all six budgeted requests
    assert_eq!(server.drain(), 7, "every queued request is dispatched");
    for h in handles {
        assert!(matches!(h.wait(), Err(Rejected::DeadlineExceeded { .. })));
    }
    assert!(
        fresh.wait().is_ok(),
        "the live request behind them is still served"
    );
}

/// After stop(), new submissions are refused with `ShuttingDown` so no
/// request can be admitted that the exiting worker would never answer.
#[test]
fn submit_after_stop_is_rejected() {
    let server = Arc::new(Server::new(ServerConfig::default()));
    server.deploy(regressor(FeatureBackend::Exact));
    let x = catalogue(1).pop().unwrap();
    let admitted = server.submit(x.clone()).unwrap();
    let worker = spawn_worker(Arc::clone(&server));
    server.stop();
    worker.join().unwrap();
    assert!(admitted.wait().is_ok(), "admitted before stop → answered");
    assert_eq!(server.submit(x).err(), Some(Rejected::ShuttingDown));
}

/// Overload: the hard bound and the hysteretic brownout controller both
/// reject with typed errors, and draining reopens admission. A single
/// anonymous tenant flooding trips the first ladder rung
/// (`TenantOverShare` — with one tenant, its fair share is the whole
/// drain target).
#[test]
fn shedding_under_overload() {
    let model = regressor(FeatureBackend::Exact);
    let server = Server::new(ServerConfig {
        max_batch: 2,
        queue_capacity: 16,
        high_water: 8,
        ..Default::default()
    });
    server.deploy(model);
    let points = catalogue(4);
    let mut admitted = Vec::new();
    let mut overloaded = 0usize;
    for i in 0..20 {
        match server.submit(points[i % 4].clone()) {
            Ok(h) => admitted.push(h),
            Err(Rejected::TenantOverShare { share, .. }) => {
                // One tenant → share = the low-water drain target (8/2).
                assert_eq!(share, 4);
                overloaded += 1;
            }
            Err(other) => panic!("unexpected rejection {other:?}"),
        }
    }
    assert_eq!(admitted.len(), 8, "exactly high_water requests admitted");
    assert_eq!(overloaded, 12, "everything above the mark is shed");
    let stats = server.stats();
    assert_eq!(stats.rejected_over_share, 12);
    assert_eq!(stats.rejected_total(), 12);

    // While still above low water (8/2 = 4), admission stays closed.
    server.step(); // 8 → 6 queued
    assert!(matches!(
        server.submit(points[0].clone()),
        Err(Rejected::TenantOverShare { .. })
    ));
    // Fully drained → hysteresis reopens.
    server.drain();
    assert!(
        server.submit(points[0].clone()).is_ok(),
        "drained server admits again"
    );
    server.drain();
    for h in admitted {
        assert!(h.wait().is_ok(), "admitted requests are all served");
    }

    // Hard bound: with shedding disabled (high_water = capacity) the
    // queue rejects QueueFull at exactly capacity.
    let hard = Server::new(ServerConfig {
        max_batch: 4,
        queue_capacity: 6,
        high_water: 6,
        ..Default::default()
    });
    hard.deploy(regressor(FeatureBackend::Exact));
    for _ in 0..6 {
        assert!(hard.submit(points[0].clone()).is_ok());
    }
    assert!(matches!(
        hard.submit(points[0].clone()),
        Err(Rejected::QueueFull { depth: 6 })
    ));
    hard.drain();
}

/// Deadline budgets: a request whose budget expires while queued is
/// dropped at dispatch with `DeadlineExceeded`, before any quantum work
/// is spent on it.
#[test]
fn deadline_budgets_drop_stale_requests_at_dispatch() {
    let model = regressor(FeatureBackend::Exact);
    let server = Server::new(ServerConfig {
        max_batch: 8,
        ..Default::default()
    });
    server.deploy(model);
    let x = catalogue(1).pop().unwrap();
    let stale = server.submit_with_budget(x.clone(), Some(1_000)).unwrap();
    let fresh = server.submit_with_budget(x.clone(), None).unwrap();
    // Time passes in the queue (e.g. other batches ran).
    server.clock().advance_ns(10_000);
    server.drain();
    match stale.wait() {
        Err(Rejected::DeadlineExceeded {
            deadline_ns,
            now_ns,
        }) => assert!(now_ns > deadline_ns),
        other => panic!("expected deadline rejection, got {other:?}"),
    }
    assert!(fresh.wait().is_ok(), "no-deadline request unaffected");
    let stats = server.stats();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(
        stats.unique_simulations, 1,
        "the stale request cost nothing"
    );
}

/// Misconfigured requests are rejected synchronously with typed errors.
#[test]
fn invalid_inputs_and_missing_model_are_typed_rejections() {
    let server = Server::new(ServerConfig::default());
    assert_eq!(
        server.submit(vec![0.1; 16]).err(),
        Some(Rejected::NoActiveModel)
    );
    server.deploy(regressor(FeatureBackend::Exact));
    assert!(matches!(
        server.submit(vec![0.1; 15]),
        Err(Rejected::InvalidInput { len: 15, qubits: 4 })
    ));
    assert!(matches!(
        server.submit(Vec::new()),
        Err(Rejected::InvalidInput { len: 0, .. })
    ));
    // Non-finite or huge coordinates would alias in the cache's
    // saturating key quantization (NaN → the all-zeros key), poisoning
    // entries for legitimate inputs — rejected at the door instead.
    let mut poisoned = vec![0.1; 16];
    poisoned[5] = f64::NAN;
    assert_eq!(
        server.submit(poisoned).err(),
        Some(Rejected::InvalidValue { index: 5 })
    );
    let mut huge = vec![0.1; 16];
    huge[2] = 1e12;
    assert_eq!(
        server.submit(huge).err(),
        Some(Rejected::InvalidValue { index: 2 })
    );
    // All four submit-time input rejections are visible to operators.
    assert_eq!(server.stats().rejected_invalid, 4);
    assert_eq!(server.stats().rejected_total(), 4);
}

/// The threaded drive mode: a dedicated batcher thread serves requests
/// submitted concurrently from several client threads; every response
/// is still bit-for-bit the lone-predict value, and stop() drains.
#[test]
fn worker_thread_serves_concurrent_clients_bitwise() {
    let model = regressor(FeatureBackend::Exact);
    let server = Arc::new(Server::new(ServerConfig {
        max_batch: 8,
        queue_capacity: 512,
        high_water: 512,
        default_deadline_ns: 0,
        ..Default::default()
    }));
    server.deploy(model.clone());
    let worker = spawn_worker(Arc::clone(&server));
    let points = Arc::new(catalogue(10));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let server = Arc::clone(&server);
            let points = Arc::clone(&points);
            std::thread::spawn(move || {
                (0..25)
                    .map(|i| {
                        let x = points[(c * 25 + i) % 10].clone();
                        let got = server
                            .submit(x.clone())
                            .expect("admitted")
                            .wait()
                            .expect("served");
                        (x, got)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for client in clients {
        for (x, response) in client.join().unwrap() {
            let lone = model.predict(&[x])[0];
            assert_eq!(response.prediction, Prediction::Value(lone));
        }
    }
    server.stop();
    worker.join().unwrap();
    let stats = server.stats();
    assert_eq!(stats.completed, 100);
    assert_eq!(stats.submitted, 100);
    assert!(stats.cache.hits > 0, "10 unique points, 100 requests");
}

/// The closed-loop load generator over a Zipf stream: deterministic,
/// cache-effective, and faster (in simulated time) than the unbatched,
/// uncached single-request baseline — the exp_serving experiment's
/// acceptance inequality, pinned here as a test.
#[test]
fn closed_loop_zipf_beats_single_request_baseline() {
    let points = catalogue(24);
    let cfg = LoadGenConfig {
        clients: 6,
        total_requests: 300,
        zipf_s: 1.1,
        seed: 9,
    };
    let batched_server = Server::new(ServerConfig::default());
    batched_server.deploy(regressor(FeatureBackend::Exact));
    let batched = run_closed_loop(&batched_server, &points, &cfg);

    let single_server = Server::new(ServerConfig {
        max_batch: 1,
        cache_capacity: 0,
        ..Default::default()
    });
    single_server.deploy(regressor(FeatureBackend::Exact));
    let single = run_closed_loop(
        &single_server,
        &points,
        &LoadGenConfig { clients: 1, ..cfg },
    );

    assert_eq!(batched.completed, 300);
    assert_eq!(single.completed, 300);
    assert!(
        batched.cache_hit_rate > 0.5,
        "Zipf stream must hit the cache"
    );
    assert!(
        batched.rows_per_s > single.rows_per_s,
        "micro-batching + caching must beat the single-request baseline \
         ({:.0} vs {:.0} rows/s)",
        batched.rows_per_s,
        single.rows_per_s
    );
    // Determinism: the same run reproduces every simulated metric.
    let again_server = Server::new(ServerConfig::default());
    again_server.deploy(regressor(FeatureBackend::Exact));
    let again = run_closed_loop(&again_server, &points, &cfg);
    assert_eq!(again.rows_per_s.to_bits(), batched.rows_per_s.to_bits());
    assert_eq!(again.stats.p99_ms.to_bits(), batched.stats.p99_ms.to_bits());
    assert_eq!(again.stats.cache.hits, batched.stats.cache.hits);
}

/// The QPU-pool engine serves the same exact-backend predictions as the
/// local engine (to numerical rounding — kernel summation orders
/// differ), and works end to end through the server.
#[test]
fn pool_engine_serves_through_qpu_pool() {
    use hpcq::{QpuConfig, SchedulePolicy};
    let model = regressor(FeatureBackend::Exact);
    let server = Server::with_engine(
        ServerConfig::default(),
        FeatureEngine::pool(2, QpuConfig::default(), SchedulePolicy::WorkStealing),
    );
    server.deploy(model.clone());
    let points = catalogue(5);
    let handles: Vec<_> = (0..10)
        .map(|i| server.submit(points[i % 5].clone()).unwrap())
        .collect();
    server.drain();
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait().unwrap();
        let lone = model.predict(&[points[i % 5].clone()])[0];
        assert!(
            (r.prediction.as_f64() - lone).abs() < 1e-10,
            "pool-served {} vs lone {lone}",
            r.prediction.as_f64()
        );
    }
    assert_eq!(server.stats().unique_simulations, 5);
    assert!(
        !server.stats().any_fault_activity(),
        "healthy pool must not touch the fault path"
    );
}

/// A pool whose every submission fails still serves every prediction:
/// the degradation ladder falls back to the in-process local engine,
/// bit-for-bit what the local path computes, and the stats taxonomy
/// records the degradation instead of hiding it.
#[test]
fn dead_pool_degrades_to_local_fallback() {
    use hpcq::{FaultPolicy, QpuConfig, QpuPool, RetryPolicy, SchedulePolicy};
    use std::sync::Mutex;
    let model = regressor(FeatureBackend::Exact);
    let broken = QpuConfig {
        fail_prob: 1.0,
        ..Default::default()
    };
    let pool = QpuPool::homogeneous(2, broken, SchedulePolicy::WorkStealing).with_fault_policy(
        FaultPolicy {
            retry: RetryPolicy {
                max_attempts_total: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let server = Server::with_engine(
        ServerConfig::default(),
        FeatureEngine::Pool(Mutex::new(pool)),
    );
    server.deploy(model.clone());
    let points = catalogue(4);
    let handles: Vec<_> = points
        .iter()
        .map(|p| server.submit(p.clone()).unwrap())
        .collect();
    server.drain();
    for (p, h) in points.iter().zip(handles) {
        let r = h.wait().expect("local fallback must serve the request");
        assert_eq!(
            r.prediction.as_f64(),
            model.predict(std::slice::from_ref(p))[0],
            "fallback rows are the local path, bit-for-bit"
        );
    }
    let stats = server.stats();
    assert!(stats.degraded_batches > 0, "ladder must record degradation");
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.rejected_backend, 0, "fallback, not shed");
    assert!(stats.any_fault_activity());
}

/// With local fallback disabled, a dead pool sheds requests with the
/// typed bottom-rung rejection instead of panicking the batcher thread.
#[test]
fn dead_pool_without_fallback_sheds_typed() {
    use hpcq::{FaultPolicy, QpuConfig, QpuPool, RetryPolicy, SchedulePolicy};
    use std::sync::Mutex;
    let broken = QpuConfig {
        fail_prob: 1.0,
        ..Default::default()
    };
    let pool = QpuPool::homogeneous(2, broken, SchedulePolicy::RoundRobin).with_fault_policy(
        FaultPolicy {
            retry: RetryPolicy {
                max_attempts_total: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let server = Server::with_engine(
        ServerConfig {
            degraded_local_fallback: false,
            ..Default::default()
        },
        FeatureEngine::Pool(Mutex::new(pool)),
    );
    server.deploy(regressor(FeatureBackend::Exact));
    let points = catalogue(3);
    let handles: Vec<_> = points
        .iter()
        .map(|p| server.submit(p.clone()).unwrap())
        .collect();
    server.drain();
    for h in handles {
        match h.wait() {
            Err(Rejected::BackendUnavailable { failed_jobs }) => {
                assert!(failed_jobs > 0, "shed must carry the failure count")
            }
            Err(other) => panic!("expected BackendUnavailable, got {other}"),
            Ok(_) => panic!("a dead pool with fallback disabled cannot serve"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.rejected_backend, 3);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.rejected_total(), 3);
}

/// Cache hits are served even while the backend is inside an outage
/// window — only requests that actually need the dead pool are shed.
#[test]
fn cache_hits_survive_backend_outage() {
    use hpcq::{FaultPolicy, FaultSchedule, QpuConfig, QpuPool, RetryPolicy, SchedulePolicy};
    use std::sync::Mutex;
    let model = regressor(FeatureBackend::Exact);
    // The lone device goes down 1 ns into its life: the warm-up batch's
    // single job dispatches at t = 0 and completes; everything after
    // lands inside the outage.
    let cfg = QpuConfig {
        faults: FaultSchedule::none().with_outage(1, u64::MAX),
        ..Default::default()
    };
    let pool =
        QpuPool::homogeneous(1, cfg, SchedulePolicy::WorkStealing).with_fault_policy(FaultPolicy {
            retry: RetryPolicy {
                max_attempts_total: 4,
                ..Default::default()
            },
            ..Default::default()
        });
    let server = Server::with_engine(
        ServerConfig {
            degraded_local_fallback: false,
            ..Default::default()
        },
        FeatureEngine::Pool(Mutex::new(pool)),
    );
    server.deploy(model.clone());
    let points = catalogue(2);
    let warm = server.submit(points[0].clone()).unwrap();
    server.drain();
    warm.wait().expect("warm-up while the device is up");
    // Device clock is now past the outage start.
    let hit_req = server.submit(points[0].clone()).unwrap();
    let miss_req = server.submit(points[1].clone()).unwrap();
    server.drain();
    let hit = hit_req.wait().expect("cache hit needs no backend");
    // Pool-computed rows match the local path to rounding (kernel
    // summation orders differ), same bound as the healthy-pool test.
    let lone = model.predict(&[points[0].clone()])[0];
    assert!(
        (hit.prediction.as_f64() - lone).abs() < 1e-10,
        "cached {} vs lone {lone}",
        hit.prediction.as_f64()
    );
    assert!(matches!(
        miss_req.wait(),
        Err(Rejected::BackendUnavailable { .. })
    ));
    let stats = server.stats();
    assert_eq!(stats.rejected_backend, 1);
    assert_eq!(stats.completed, 2);
    assert!(stats.cache.hits >= 1);
}

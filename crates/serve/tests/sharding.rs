//! Integration tests for the sharded serving tier: consistent-hash
//! stability under shard add/remove, sharded ≡ unsharded bit-identical
//! predictions (runs under CI's `POSTVAR_NUM_THREADS = 1, 2, 4`
//! matrix), staged-rollout rollback, fleet-wide aggregated admission,
//! and the parallel-round sim-time accounting.

use pvqnn::features::FeatureBackend;
use pvqnn::model::RegressorMode;
use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
use serve::{
    demo_catalogue, Prediction, Rejected, Router, RouterConfig, Server, ServerConfig, TenantId,
};

fn regressor(scale: f64) -> PostVarRegressor {
    let data = demo_catalogue(20);
    let y: Vec<f64> = (0..20).map(|i| scale * (i as f64 * 0.37).sin()).collect();
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6))
}

/// A deliberately bad model for rollback tests: trained on shuffled
/// labels so its probe error is far worse than the incumbent's.
fn broken_regressor() -> PostVarRegressor {
    let data = demo_catalogue(20);
    let y: Vec<f64> = (0..20).map(|i| 40.0 + (i % 3) as f64 * 13.0).collect();
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    PostVarRegressor::fit(generator, &data, &y, RegressorMode::Ridge(1e-6))
}

/// The tentpole guarantee: routing through N shards returns bit-for-bit
/// the prediction a lone `predict` call (and hence a single unsharded
/// server) produces, for every point, at whatever thread count the CI
/// matrix pinned.
#[test]
fn sharded_predictions_match_unsharded_bitwise() {
    let model = regressor(1.0);
    let points = demo_catalogue(24);
    for shards in [1, 2, 3, 5] {
        let router = Router::new(RouterConfig {
            shards,
            ..RouterConfig::default()
        });
        router.deploy(model.clone());
        // Unsharded reference server fed the identical stream.
        let single = Server::new(ServerConfig::default());
        single.deploy(model.clone());
        let xs: Vec<&Vec<f64>> = (0..72).map(|i| &points[(i * 7) % 24]).collect();
        let sharded: Vec<_> = xs
            .iter()
            .map(|x| router.submit((*x).clone()).expect("admitted"))
            .collect();
        let unsharded: Vec<_> = xs
            .iter()
            .map(|x| single.submit((*x).clone()).expect("admitted"))
            .collect();
        router.drain();
        single.drain();
        for ((x, s), u) in xs.iter().zip(sharded).zip(unsharded) {
            let s = s.wait().expect("served sharded");
            let u = u.wait().expect("served unsharded");
            let lone = model.predict(std::slice::from_ref(*x))[0];
            assert_eq!(s.prediction, Prediction::Value(lone), "{shards} shards");
            assert_eq!(s.prediction, u.prediction, "sharded ≡ unsharded");
        }
    }
}

/// Consistent hashing: adding a shard to an N-shard fleet must leave at
/// least (N−1)/N of keys on their original shard (the expected moved
/// fraction is 1/(N+1)); removing it must restore the original
/// assignment exactly, and must never move a key between two surviving
/// shards.
#[test]
fn hash_ring_stability_under_add_and_remove() {
    let points = demo_catalogue(257);
    for shards in [2usize, 4, 8] {
        let router = Router::new(RouterConfig {
            shards,
            ..RouterConfig::default()
        });
        let before: Vec<u32> = points.iter().map(|x| router.shard_for_point(x)).collect();
        let new_id = router.add_shard();
        let after: Vec<u32> = points.iter().map(|x| router.shard_for_point(x)).collect();
        let mut moved = 0;
        for (b, a) in before.iter().zip(&after) {
            if a != b {
                moved += 1;
                assert_eq!(
                    *a, new_id,
                    "a key that moves on add may only move to the new shard"
                );
            }
        }
        let unmoved_floor =
            (points.len() as f64 * (shards as f64 - 1.0) / shards as f64).floor() as usize;
        assert!(
            points.len() - moved >= unmoved_floor,
            "{shards} shards: {moved}/{} keys moved on add (≥ (N−1)/N must stay)",
            points.len()
        );
        assert!(moved > 0, "the new shard must take over some keys");
        // Removing the shard restores the pre-add assignment exactly.
        assert!(router.remove_shard(new_id));
        let restored: Vec<u32> = points.iter().map(|x| router.shard_for_point(x)).collect();
        assert_eq!(before, restored, "{shards} shards: remove must restore");
    }
}

/// Shard placement is a pure function of the quantized key: two routers
/// built with the same config agree on every assignment (FNV-1a, not a
/// randomized hasher).
#[test]
fn shard_placement_is_deterministic_across_routers() {
    let points = demo_catalogue(64);
    let a = Router::new(RouterConfig {
        shards: 6,
        ..RouterConfig::default()
    });
    let b = Router::new(RouterConfig {
        shards: 6,
        ..RouterConfig::default()
    });
    for x in &points {
        assert_eq!(a.shard_for_point(x), b.shard_for_point(x));
    }
}

/// Requests actually land on the shard the ring names, and a request's
/// cache rows therefore live on exactly one shard: re-submitting a
/// point is a cache hit fleet-wide, with exactly one unique simulation.
#[test]
fn cache_locality_one_unique_simulation_per_point_fleet_wide() {
    let model = regressor(1.0);
    let router = Router::new(RouterConfig {
        shards: 4,
        ..RouterConfig::default()
    });
    router.deploy(model);
    let points = demo_catalogue(16);
    for round in 0..3 {
        for x in &points {
            let _ = router.submit(x.clone()).expect("admitted");
        }
        router.drain();
        let _ = round;
    }
    let stats = router.stats();
    let unique: u64 = stats
        .per_shard
        .iter()
        .map(|(_, s)| s.unique_simulations)
        .sum();
    assert_eq!(
        unique, 16,
        "each distinct point must be simulated exactly once across the whole fleet"
    );
    assert_eq!(stats.completed, 48);
}

/// Staged rollout, happy path: every shard swaps to the new version and
/// serves its predictions afterwards.
#[test]
fn staged_rollout_swaps_every_shard() {
    let v1 = regressor(1.0);
    let v2 = regressor(1.02);
    let router = Router::new(RouterConfig {
        shards: 3,
        ..RouterConfig::default()
    });
    router.deploy(v1);
    let probes = demo_catalogue(6);
    let targets: Vec<f64> = v2.predict(&probes);
    let report = router.staged_rollout(
        v2.clone(),
        &serve::RolloutCriteria {
            probes: probes.clone(),
            targets,
            max_error_regression: 0.10,
            max_latency_regression: 0.50,
        },
    );
    assert!(report.succeeded, "near-identical retrain must roll out");
    assert!(!report.rolled_back);
    assert_eq!(report.shards.len(), 3);
    assert!(report.shards.iter().all(|s| s.swapped));
    // The fleet now serves v2's predictions.
    let h = router.submit(probes[0].clone()).unwrap();
    router.drain();
    let served = h.wait().unwrap();
    assert_eq!(
        served.prediction,
        Prediction::Value(v2.predict(&probes[..1])[0])
    );
}

/// Staged rollout, regression path: the first shard's post-swap probe
/// error explodes → the rollout stops, the fleet rolls back, and every
/// shard still serves the incumbent version's predictions bit-for-bit.
#[test]
fn staged_rollout_rolls_back_on_regression_and_fleet_keeps_serving_v1() {
    let v1 = regressor(1.0);
    let router = Router::new(RouterConfig {
        shards: 4,
        ..RouterConfig::default()
    });
    router.deploy(v1.clone());
    let probes = demo_catalogue(6);
    // Targets are what v1 predicts: the broken candidate regresses hard.
    let targets: Vec<f64> = v1.predict(&probes);
    let report = router.staged_rollout(
        broken_regressor(),
        &serve::RolloutCriteria {
            probes: probes.clone(),
            targets,
            max_error_regression: 0.10,
            max_latency_regression: 0.50,
        },
    );
    assert!(!report.succeeded);
    assert!(report.rolled_back);
    assert_eq!(
        report.shards.len(),
        1,
        "rollout must stop at the first regressing shard"
    );
    assert!(!report.shards[0].swapped);
    // Every shard is back on v1 (the unaffected shards were never
    // swapped; the probed one rolled back)...
    for id in router.shard_ids() {
        let shard = router.shard(id).unwrap();
        let (active, _) = shard.registry().active().unwrap();
        assert_eq!(active, serve::ModelVersion(1), "shard {id} active version");
    }
    // ...and fleet traffic still gets v1's exact predictions.
    let points = demo_catalogue(12);
    let handles: Vec<_> = points
        .iter()
        .map(|x| router.submit(x.clone()).unwrap())
        .collect();
    router.drain();
    for (x, h) in points.iter().zip(handles) {
        let served = h.wait().unwrap();
        assert_eq!(
            served.prediction,
            Prediction::Value(v1.predict(std::slice::from_ref(x))[0])
        );
    }
}

/// The router's aggregated admission: a tenant flooding the fleet past
/// the summed high-water mark is shed at the router door with a
/// fleet-level fair-share verdict, while a well-behaved tenant keeps
/// being admitted — before any shard's local ladder trips.
#[test]
fn router_door_sheds_fleet_wide_flooder_but_admits_victim() {
    let model = regressor(1.0);
    // Tiny queues so the fleet ladder trips quickly: capacity 8·2=16,
    // summed high water 4·2=8, fleet drain target 4.
    let router = Router::new(RouterConfig {
        shards: 2,
        shard: ServerConfig {
            queue_capacity: 8,
            high_water: 4,
            ..ServerConfig::default()
        },
        ..RouterConfig::default()
    });
    router.deploy(model);
    let flooder = TenantId(7);
    let victim = TenantId(8);
    router.set_tenant_weight(flooder, 1);
    router.set_tenant_weight(victim, 1);
    let points = demo_catalogue(64);
    let mut over_share = 0;
    for x in points.iter().take(32) {
        match router.submit_for(flooder, x.clone()) {
            Ok(_) => {}
            Err(Rejected::TenantOverShare { tenant, .. }) => {
                assert_eq!(tenant, flooder);
                over_share += 1;
            }
            Err(other) => panic!("unexpected rejection {other:?}"),
        }
    }
    assert!(over_share > 0, "the flooder must be shed at the router");
    // The victim's fleet-wide depth is zero: it gets in.
    assert!(router.submit_for(victim, points[40].clone()).is_ok());
    let shed = router.stats().rejected_router_over_share;
    assert_eq!(shed, over_share, "router counters track door sheds");
    router.drain();
}

/// Parallel-round time accounting: a round's clock advance is the
/// *maximum* shard batch cost plus overhead, not the sum — so a fleet
/// saturated with warm cache hits beats a single server on simulated
/// throughput, and the whole run is deterministic (two identical runs,
/// identical stats).
#[test]
fn rounds_charge_max_shard_cost_and_runs_are_deterministic() {
    let run = || {
        let model = regressor(1.0);
        let router = Router::new(RouterConfig {
            shards: 4,
            ..RouterConfig::default()
        });
        router.deploy(model);
        let points = demo_catalogue(32);
        // Warm every shard's cache, then measure a saturated wave.
        for x in &points {
            let _ = router.submit(x.clone()).unwrap();
        }
        router.drain();
        let warm_start = router.clock().now_ns();
        for wave in 0..8 {
            for x in &points {
                let _ = router.submit(x.clone()).unwrap();
            }
            router.drain();
            let _ = wave;
        }
        let elapsed = router.clock().now_ns() - warm_start;
        (elapsed, router.stats().completed, router.stats().rounds)
    };
    let (elapsed_a, completed_a, rounds_a) = run();
    let (elapsed_b, completed_b, rounds_b) = run();
    assert_eq!(elapsed_a, elapsed_b, "sim time is deterministic");
    assert_eq!(completed_a, completed_b);
    assert_eq!(rounds_a, rounds_b);
    // 8 waves × 32 warm rows on 4 shards: if shard costs serialized the
    // warm waves alone would cost ≥ 8 waves × 4 batches × 82 µs ≈ 2.6 ms.
    // Parallel rounds must come in well under that.
    assert!(
        elapsed_a < 2_300_000,
        "parallel rounds must not serialize shard costs (got {elapsed_a} ns)"
    );
}

/// Removing a shard answers its queued requests before the vnodes leave
/// the ring, and the fleet keeps serving afterwards.
#[test]
fn remove_shard_drains_then_reroutes() {
    let model = regressor(1.0);
    let router = Router::new(RouterConfig {
        shards: 3,
        ..RouterConfig::default()
    });
    router.deploy(model.clone());
    let points = demo_catalogue(24);
    let handles: Vec<_> = points
        .iter()
        .map(|x| router.submit(x.clone()).unwrap())
        .collect();
    let doomed = router.shard_ids()[1];
    assert!(router.remove_shard(doomed));
    router.drain();
    for (x, h) in points.iter().zip(handles) {
        let served = h.wait().expect("queued request answered despite removal");
        assert_eq!(
            served.prediction,
            Prediction::Value(model.predict(std::slice::from_ref(x))[0])
        );
    }
    assert_eq!(router.num_shards(), 2);
    assert!(!router.remove_shard(doomed), "already gone");
    // Post-removal traffic still round-trips.
    let h = router.submit(points[0].clone()).unwrap();
    router.drain();
    assert!(h.wait().is_ok());
    // The last shard can never be removed.
    let ids = router.shard_ids();
    assert!(router.remove_shard(ids[0]));
    assert!(!router.remove_shard(router.shard_ids()[0]));
}

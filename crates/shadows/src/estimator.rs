//! Median-of-means estimation from classical shadows.

use crate::snapshot::Snapshot;
use pauli::{PauliString, PauliSum};
use rayon::prelude::*;

/// An estimator over a fixed set of acquired snapshots.
///
/// Implements the median-of-means scheme of \[43\]/\[45\] that Proposition 2
/// builds on: snapshots are split into `groups` equal parts, per-group
/// means are computed, and the median of those means is returned.
#[derive(Clone, Debug)]
pub struct ShadowEstimator {
    snapshots: Vec<Snapshot>,
    groups: usize,
}

impl ShadowEstimator {
    /// Wraps snapshots with `groups` median-of-means groups.
    ///
    /// # Panics
    /// Panics if there are fewer snapshots than groups or `groups == 0`.
    pub fn new(snapshots: Vec<Snapshot>, groups: usize) -> Self {
        assert!(groups >= 1, "need at least one group");
        assert!(
            snapshots.len() >= groups,
            "need at least as many snapshots as groups"
        );
        ShadowEstimator { snapshots, groups }
    }

    /// The standard group count for estimating `m` observables to failure
    /// probability `δ`: `K = ⌈2 ln(2m/δ)⌉` \[43\].
    pub fn recommended_groups(num_observables: usize, delta: f64) -> usize {
        assert!(delta > 0.0 && delta < 1.0);
        (2.0 * (2.0 * num_observables as f64 / delta).ln()).ceil() as usize
    }

    /// Number of snapshots.
    pub fn num_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// Number of median-of-means groups.
    pub fn num_groups(&self) -> usize {
        self.groups
    }

    /// Snapshot index range `[lo, hi)` of median-of-means group `g` (the
    /// last group absorbs the remainder).
    fn group_bounds(&self, g: usize) -> (usize, usize) {
        let t = self.snapshots.len();
        let group_size = t / self.groups;
        debug_assert!(group_size >= 1);
        let lo = g * group_size;
        let hi = if g + 1 == self.groups {
            t
        } else {
            lo + group_size
        };
        (lo, hi)
    }

    /// Median of a list of group means.
    fn median(mut means: Vec<f64>) -> f64 {
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let k = means.len();
        if k % 2 == 1 {
            means[k / 2]
        } else {
            0.5 * (means[k / 2 - 1] + means[k / 2])
        }
    }

    /// Median-of-means estimate of `tr(P ρ)`.
    pub fn estimate(&self, p: &PauliString) -> f64 {
        let means: Vec<f64> = (0..self.groups)
            .map(|g| {
                let (lo, hi) = self.group_bounds(g);
                let sum: f64 = self.snapshots[lo..hi]
                    .iter()
                    .map(|s| s.estimate_pauli(p))
                    .sum();
                sum / (hi - lo) as f64
            })
            .collect();
        Self::median(means)
    }

    /// Estimates many Pauli strings from the same snapshots (this sharing
    /// is the whole point of the protocol).
    ///
    /// The loop is inverted relative to calling [`Self::estimate`] per
    /// string: a single pass over the snapshots (parallelised over
    /// median-of-means groups with rayon) evaluates **every** Pauli per
    /// snapshot, so each snapshot's basis masks and outcome are loaded
    /// once and shared across all `m` observables instead of being
    /// re-walked `m` times. Per-string support masks and `3^{|P|}` scale
    /// factors are precomputed once. Group means are accumulated in the
    /// same snapshot order as [`Self::estimate`], so results match it
    /// exactly.
    pub fn estimate_many(&self, paulis: &[PauliString]) -> Vec<f64> {
        if paulis.is_empty() {
            return Vec::new();
        }
        struct Pre {
            x: u64,
            z: u64,
            supp: u64,
            scale: f64,
        }
        let pre: Vec<Pre> = paulis
            .iter()
            .map(|p| {
                debug_assert_eq!(
                    p.num_qubits(),
                    self.snapshots[0].num_qubits(),
                    "qubit-count mismatch"
                );
                let supp = p.support_mask();
                Pre {
                    x: p.x_mask(),
                    z: p.z_mask(),
                    supp,
                    scale: 3f64.powi(supp.count_ones() as i32),
                }
            })
            .collect();
        let m = paulis.len();
        // One pass over each group's snapshots, all observables at once.
        let group_means: Vec<Vec<f64>> = (0..self.groups)
            .into_par_iter()
            .map(|g| {
                let (lo, hi) = self.group_bounds(g);
                let mut sums = vec![0.0f64; m];
                for snap in &self.snapshots[lo..hi] {
                    let (bx, bz) = snap.basis_masks();
                    let outcome = snap.outcome();
                    for (k, p) in pre.iter().enumerate() {
                        if (bx ^ p.x) & p.supp == 0 && (bz ^ p.z) & p.supp == 0 {
                            if (outcome & p.supp).count_ones().is_multiple_of(2) {
                                sums[k] += p.scale;
                            } else {
                                sums[k] -= p.scale;
                            }
                        }
                    }
                }
                // Divide (not multiply-by-reciprocal) so each mean is
                // bit-identical to `estimate`'s `sum / (hi - lo)`.
                for s in sums.iter_mut() {
                    *s /= (hi - lo) as f64;
                }
                sums
            })
            .collect();
        (0..m)
            .map(|k| Self::median(group_means.iter().map(|g| g[k]).collect()))
            .collect()
    }

    /// Estimate of a weighted observable `Σ c_i P_i`.
    pub fn estimate_sum(&self, o: &PauliSum) -> f64 {
        o.terms().iter().map(|(c, p)| c * self.estimate(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ShadowProtocol;
    use qsim::{Circuit, Gate, StateVector};

    fn bell_state() -> StateVector {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        StateVector::from_circuit(&c)
    }

    #[test]
    fn bell_state_expectations_converge() {
        let s = bell_state();
        let shots = ShadowProtocol::new(60_000, 11).acquire(&s);
        let est = ShadowEstimator::new(shots, 10);
        let cases = [
            ("ZZ", 1.0),
            ("XX", 1.0),
            ("YY", -1.0),
            ("ZI", 0.0),
            ("IX", 0.0),
        ];
        for (txt, want) in cases {
            let p = PauliString::parse(txt).unwrap();
            let got = est.estimate(&p);
            assert!((got - want).abs() < 0.08, "{txt}: got {got}, want {want}");
        }
    }

    #[test]
    fn estimates_match_exact_on_product_state() {
        let mut c = Circuit::new(3);
        c.push(Gate::Ry(0, 0.9));
        c.push(Gate::Rx(1, -0.4));
        c.push(Gate::H(2));
        let s = StateVector::from_circuit(&c);
        let shots = ShadowProtocol::new(50_000, 5).acquire(&s);
        let est = ShadowEstimator::new(shots, 9);
        for txt in ["ZII", "IZI", "IIZ", "XII", "IYI", "ZZI"] {
            let p = PauliString::parse(txt).unwrap();
            let exact = s.expectation(&p);
            let got = est.estimate(&p);
            assert!(
                (got - exact).abs() < 0.1,
                "{txt}: shadow {got} vs exact {exact}"
            );
        }
    }

    #[test]
    fn identity_is_exact() {
        let s = StateVector::zero_state(2);
        let shots = ShadowProtocol::new(30, 2).acquire(&s);
        let est = ShadowEstimator::new(shots, 3);
        assert_eq!(est.estimate(&PauliString::identity(2)), 1.0);
    }

    #[test]
    fn estimate_many_matches_individual() {
        let s = bell_state();
        let shots = ShadowProtocol::new(5_000, 13).acquire(&s);
        let est = ShadowEstimator::new(shots, 5);
        let paulis: Vec<PauliString> = ["ZZ", "XX", "ZI"]
            .iter()
            .map(|t| PauliString::parse(t).unwrap())
            .collect();
        let many = est.estimate_many(&paulis);
        for (p, m) in paulis.iter().zip(many.iter()) {
            assert_eq!(*m, est.estimate(p));
        }
    }

    #[test]
    fn estimate_sum_is_linear() {
        let s = bell_state();
        let shots = ShadowProtocol::new(5_000, 17).acquire(&s);
        let est = ShadowEstimator::new(shots, 5);
        let zz = PauliString::parse("ZZ").unwrap();
        let xx = PauliString::parse("XX").unwrap();
        let sum = PauliSum::from_terms(vec![(2.0, zz), (-0.5, xx)]);
        let want = 2.0 * est.estimate(&zz) - 0.5 * est.estimate(&xx);
        assert!((est.estimate_sum(&sum) - want).abs() < 1e-12);
    }

    #[test]
    fn recommended_groups_grows_logarithmically() {
        let g1 = ShadowEstimator::recommended_groups(10, 0.05);
        let g2 = ShadowEstimator::recommended_groups(1_000, 0.05);
        assert!(g2 > g1);
        assert!(g2 < 4 * g1, "should grow only logarithmically");
    }

    #[test]
    fn higher_locality_needs_more_shots() {
        // Empirical variance check: with the same snapshot budget the
        // 3-local estimate fluctuates more than the 1-local one.
        let mut c = Circuit::new(3);
        c.push(Gate::Ry(0, 0.3));
        c.push(Gate::Ry(1, 0.3));
        c.push(Gate::Ry(2, 0.3));
        let s = StateVector::from_circuit(&c);
        let z1 = PauliString::parse("IIZ").unwrap();
        let z3 = PauliString::parse("ZZZ").unwrap();
        let (mut var1, mut var3) = (0.0, 0.0);
        let reps = 30;
        for seed in 0..reps {
            let shots = ShadowProtocol::new(300, 1000 + seed).acquire(&s);
            let est = ShadowEstimator::new(shots, 1); // plain mean
            let e1 = est.estimate(&z1) - s.expectation(&z1);
            let e3 = est.estimate(&z3) - s.expectation(&z3);
            var1 += e1 * e1;
            var3 += e3 * e3;
        }
        assert!(
            var3 > 2.0 * var1,
            "variance should grow with locality: var1={var1}, var3={var3}"
        );
    }

    #[test]
    #[should_panic]
    fn too_few_snapshots_for_groups() {
        let s = StateVector::zero_state(1);
        let shots = ShadowProtocol::new(3, 1).acquire(&s);
        let _ = ShadowEstimator::new(shots, 10);
    }
}

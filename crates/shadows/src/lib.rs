//! # shadows — classical shadows with Pauli-basis measurements
//!
//! Implements the randomized measurement protocol of Huang, Kueng &
//! Preskill \[43\] as used by the paper (§II.B, §IV.B, Proposition 2):
//!
//! 1. For each snapshot, draw a uniformly random single-qubit Clifford
//!    basis (X, Y or Z) per qubit, rotate the state, and measure once.
//! 2. The inverse of the measurement channel gives an unbiased one-shot
//!    estimator of the state; for a Pauli string `P` the estimator is
//!    `3^{|P|} · (±1)` when every support qubit was measured in the
//!    matching basis, and `0` otherwise.
//! 3. Median-of-means over `K` groups gives the exponential concentration
//!    that Proposition 2's `log(md/δ)` factor relies on.
//!
//! The shadow norm for a Pauli string under this ensemble is
//! `‖P‖_S² = 3^{|P|}` (upper-bounded in the paper by `4^L‖O‖²` for
//! arbitrary `L`-local observables).

pub mod estimator;
pub mod norm;
pub mod protocol;
pub mod snapshot;

pub use estimator::ShadowEstimator;
pub use norm::{pauli_shadow_norm_sq, shadow_norm_bound_sq, shots_for_error};
pub use protocol::ShadowProtocol;
pub use snapshot::Snapshot;

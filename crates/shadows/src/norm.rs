//! Shadow norms and shot-budget formulas.
//!
//! For the random single-qubit Clifford (Pauli-basis) ensemble the shadow
//! norm of a Pauli string `P` is `‖P‖_S² = 3^{|P|}`; the paper quotes the
//! looser bound `‖O‖_S² ≤ 4^L ‖O‖²` for any observable acting on `L`
//! qubits (§II.B). The shot budget for estimating `M` observables to
//! additive error ε is `O(log M · max_i ‖O_i‖_S² / ε²)`.

use pauli::{PauliString, PauliSum};

/// Exact shadow-norm squared of a Pauli string under the Pauli-basis
/// ensemble: `3^{weight}`.
pub fn pauli_shadow_norm_sq(p: &PauliString) -> f64 {
    3f64.powi(p.weight() as i32)
}

/// Shadow-norm-squared upper bound for a weighted Pauli sum, via the
/// triangle inequality `‖Σc_iP_i‖_S ≤ Σ|c_i|‖P_i‖_S`.
pub fn sum_shadow_norm_bound_sq(o: &PauliSum) -> f64 {
    let s: f64 = o
        .terms()
        .iter()
        .map(|(c, p)| c.abs() * pauli_shadow_norm_sq(p).sqrt())
        .sum();
    s * s
}

/// The paper's generic bound `4^L · ‖O‖²` for an observable of locality
/// `L` and spectral norm `‖O‖` (§II.B).
pub fn shadow_norm_bound_sq(locality: usize, spectral_norm: f64) -> f64 {
    4f64.powi(locality as i32) * spectral_norm * spectral_norm
}

/// Snapshot budget to estimate `m` observables with maximal shadow-norm²
/// `max_norm_sq` to additive error `eps` with failure probability `delta`:
/// `T = ⌈(34/ε²)·max‖O‖_S²⌉ · ⌈2 ln(2m/δ)⌉` — the constants from \[43\]'s
/// Theorem S1 (median-of-means with K groups of size 34‖O‖_S²/ε²).
pub fn shots_for_error(m: usize, max_norm_sq: f64, eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0 && m >= 1);
    let group_size = (34.0 * max_norm_sq / (eps * eps)).ceil() as usize;
    let groups = (2.0 * (2.0 * m as f64 / delta).ln()).ceil() as usize;
    group_size.max(1) * groups.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_norms() {
        assert_eq!(
            pauli_shadow_norm_sq(&PauliString::parse("IIII").unwrap()),
            1.0
        );
        assert_eq!(
            pauli_shadow_norm_sq(&PauliString::parse("ZIII").unwrap()),
            3.0
        );
        assert_eq!(
            pauli_shadow_norm_sq(&PauliString::parse("ZXIY").unwrap()),
            27.0
        );
    }

    #[test]
    fn pauli_norm_below_generic_bound() {
        // 3^|P| ≤ 4^|P|·1² — the exact ensemble norm is tighter than the
        // paper's generic bound.
        for txt in ["Z", "XY", "XYZ", "XYZZ"] {
            let p = PauliString::parse(txt).unwrap();
            assert!(
                pauli_shadow_norm_sq(&p) <= shadow_norm_bound_sq(p.weight(), 1.0),
                "{txt}"
            );
        }
    }

    #[test]
    fn sum_bound_triangle() {
        let o = PauliSum::from_terms(vec![
            (1.0, PauliString::parse("ZI").unwrap()),
            (1.0, PauliString::parse("IZ").unwrap()),
        ]);
        // (√3 + √3)² = 12.
        assert!((sum_shadow_norm_bound_sq(&o) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn shot_budget_scaling() {
        // Halving ε quadruples the per-group budget.
        let t1 = shots_for_error(10, 9.0, 0.1, 0.05);
        let t2 = shots_for_error(10, 9.0, 0.05, 0.05);
        let ratio = t2 as f64 / t1 as f64;
        assert!(
            (ratio - 4.0).abs() < 0.2,
            "expected ≈4× budget for ε/2, got {ratio}"
        );
        // Observable count enters only logarithmically.
        let t3 = shots_for_error(10_000, 9.0, 0.1, 0.05);
        assert!((t3 as f64 / t1 as f64) < 4.0);
    }
}

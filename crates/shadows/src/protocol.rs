//! Snapshot acquisition: randomized single-qubit Pauli-basis measurements.

use crate::snapshot::Snapshot;
use pauli::{Pauli, PauliString};
use qsim::sample::sample_bitstrings;
use qsim::{measurement_rotation, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Configuration for shadow acquisition.
#[derive(Clone, Copy, Debug)]
pub struct ShadowProtocol {
    /// Total number of snapshots `T`.
    pub snapshots: usize,
    /// RNG seed (every acquisition is deterministic given the seed).
    pub seed: u64,
}

impl ShadowProtocol {
    /// Protocol with `snapshots` measurements and the given seed.
    pub fn new(snapshots: usize, seed: u64) -> Self {
        assert!(snapshots > 0);
        ShadowProtocol { snapshots, seed }
    }

    /// Acquires classical shadows of `state`.
    ///
    /// Each snapshot rotates a copy of the state into a uniformly random
    /// per-qubit X/Y/Z basis and samples one outcome — exactly the
    /// "tensor products of single-qubit Clifford gates" ensemble whose
    /// shadow norm the paper quotes (§II.B).
    pub fn acquire(&self, state: &StateVector) -> Vec<Snapshot> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.acquire_with_rng(state, &mut rng)
    }

    /// Acquisition driven by an external RNG (for composing with other
    /// stochastic pipelines).
    pub fn acquire_with_rng<R: Rng>(&self, state: &StateVector, rng: &mut R) -> Vec<Snapshot> {
        let n = state.num_qubits();
        (0..self.snapshots)
            .map(|_| {
                let bases: Vec<Pauli> = (0..n)
                    .map(|_| Pauli::NONTRIVIAL[rng.random_range(0..3usize)])
                    .collect();
                let basis_string = PauliString::from_letters(&bases);
                let mut rotated = state.clone();
                rotated.apply_circuit(&measurement_rotation(&basis_string));
                let outcome = sample_bitstrings(&rotated, 1, rng)[0];
                Snapshot::new(bases, outcome)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::{Circuit, Gate};

    #[test]
    fn acquisition_is_deterministic_per_seed() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let s = StateVector::from_circuit(&c);
        let a = ShadowProtocol::new(50, 7).acquire(&s);
        let b = ShadowProtocol::new(50, 7).acquire(&s);
        let c2 = ShadowProtocol::new(50, 8).acquire(&s);
        assert_eq!(a, b);
        assert_ne!(a, c2);
    }

    #[test]
    fn snapshot_count_and_shape() {
        let s = StateVector::zero_state(3);
        let shots = ShadowProtocol::new(20, 1).acquire(&s);
        assert_eq!(shots.len(), 20);
        assert!(shots.iter().all(|sn| sn.num_qubits() == 3));
    }

    #[test]
    fn z_basis_outcomes_respect_state() {
        // On |0…0⟩ any snapshot whose basis includes Z on qubit k must see
        // outcome bit 0 on that qubit.
        let s = StateVector::zero_state(4);
        for sn in ShadowProtocol::new(200, 3).acquire(&s) {
            for q in 0..4 {
                if sn.basis(q) == Pauli::Z {
                    assert_eq!(sn.eigenvalue(q), 1.0);
                }
            }
        }
    }
}

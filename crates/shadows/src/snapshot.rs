//! One classical shadow: a random measurement basis and its outcome.

use pauli::{Pauli, PauliString};

/// A single randomized-measurement record: the per-qubit basis that was
/// measured and the observed bitstring.
///
/// The bases are also stored as a symplectic mask pair `(bx, bz)` (bit `k`
/// of `bx`/`bz` set iff basis `k` is X-or-Y / Z-or-Y), precomputed once at
/// construction so estimators can test basis agreement with a handful of
/// mask operations instead of a per-qubit letter walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Measurement basis per qubit (always X, Y or Z — never I).
    bases: Vec<Pauli>,
    /// Measured bits; bit `k` is qubit `k`'s outcome.
    outcome: u64,
    /// X-type basis mask (bit `k` set iff basis `k` ∈ {X, Y}).
    bx: u64,
    /// Z-type basis mask (bit `k` set iff basis `k` ∈ {Z, Y}).
    bz: u64,
}

impl Snapshot {
    /// Creates a snapshot record.
    ///
    /// # Panics
    /// Panics if any basis letter is the identity.
    pub fn new(bases: Vec<Pauli>, outcome: u64) -> Self {
        assert!(
            bases.iter().all(|&b| b != Pauli::I),
            "measurement basis must be X, Y or Z on every qubit"
        );
        assert!(!bases.is_empty() && bases.len() <= 64);
        let (mut bx, mut bz) = (0u64, 0u64);
        for (k, b) in bases.iter().enumerate() {
            let (xb, zb) = b.xz_bits();
            if xb {
                bx |= 1u64 << k;
            }
            if zb {
                bz |= 1u64 << k;
            }
        }
        Snapshot {
            bases,
            outcome,
            bx,
            bz,
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.bases.len()
    }

    /// The basis letter measured on `qubit`.
    #[inline]
    pub fn basis(&self, qubit: usize) -> Pauli {
        self.bases[qubit]
    }

    /// The measured bit of `qubit` as ±1 (`0 → +1`, `1 → −1`).
    #[inline]
    pub fn eigenvalue(&self, qubit: usize) -> f64 {
        if (self.outcome >> qubit) & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// The raw outcome bits.
    #[inline]
    pub fn outcome(&self) -> u64 {
        self.outcome
    }

    /// The precomputed symplectic basis masks `(bx, bz)`.
    #[inline]
    pub fn basis_masks(&self) -> (u64, u64) {
        (self.bx, self.bz)
    }

    /// The single-snapshot estimator of `tr(P ρ)` for Pauli string `p`:
    ///
    /// `∏_{k ∈ supp(P)} [basis_k = P_k] · 3 · (±1)_k`, i.e. `3^{|P|}`
    /// times the outcome sign when all support bases match, else 0.
    /// Identity qubits always contribute factor 1.
    ///
    /// Evaluated with mask arithmetic: the bases agree on the whole
    /// support iff both symplectic masks match there.
    pub fn estimate_pauli(&self, p: &PauliString) -> f64 {
        debug_assert_eq!(p.num_qubits(), self.num_qubits());
        let supp = p.support_mask();
        if (self.bx ^ p.x_mask()) & supp != 0 || (self.bz ^ p.z_mask()) & supp != 0 {
            return 0.0;
        }
        3f64.powi(supp.count_ones() as i32) * p.outcome_sign(self.outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_matching_basis() {
        // 2 qubits, measured Z⊗Z with outcome |01⟩ (qubit 0 = 1).
        let s = Snapshot::new(vec![Pauli::Z, Pauli::Z], 0b01);
        let z0 = PauliString::single(2, 0, Pauli::Z);
        let z1 = PauliString::single(2, 1, Pauli::Z);
        let zz = PauliString::parse("ZZ").unwrap();
        assert_eq!(s.estimate_pauli(&z0), -3.0);
        assert_eq!(s.estimate_pauli(&z1), 3.0);
        assert_eq!(s.estimate_pauli(&zz), -9.0);
    }

    #[test]
    fn estimator_mismatched_basis_is_zero() {
        let s = Snapshot::new(vec![Pauli::Z, Pauli::X], 0b00);
        let x0 = PauliString::single(2, 0, Pauli::X);
        assert_eq!(s.estimate_pauli(&x0), 0.0);
        // Qubit 1 measured in X: X on qubit 1 matches.
        let x1 = PauliString::single(2, 1, Pauli::X);
        assert_eq!(s.estimate_pauli(&x1), 3.0);
    }

    #[test]
    fn identity_estimate_is_one() {
        let s = Snapshot::new(vec![Pauli::Y], 0b1);
        assert_eq!(s.estimate_pauli(&PauliString::identity(1)), 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_identity_basis() {
        let _ = Snapshot::new(vec![Pauli::I], 0);
    }

    #[test]
    fn eigenvalues() {
        let s = Snapshot::new(vec![Pauli::X, Pauli::Y, Pauli::Z], 0b101);
        assert_eq!(s.eigenvalue(0), -1.0);
        assert_eq!(s.eigenvalue(1), 1.0);
        assert_eq!(s.eigenvalue(2), -1.0);
    }
}

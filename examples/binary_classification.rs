//! Coat-vs-shirt binary classification — a scaled-down Table III run.
//!
//! Trains the classical logistic baseline, the variational QNN, and three
//! post-variational strategies on the synthetic Fashion-MNIST substitute
//! and prints train/test metrics side by side.
//!
//! Run: `cargo run --example binary_classification --release`

use postvar::ml::{LogisticConfig, LogisticRegression};
use postvar::prelude::*;
use postvar::pvqnn::variational::VariationalConfig;
use postvar::qdata::SynthConfig;

fn main() {
    // 60 train + 20 test per class (small enough for a demo run).
    let ds = fashion_synthetic(
        &[FashionClass::Coat, FashionClass::Shirt],
        80,
        42,
        &SynthConfig::default(),
    );
    let (train, test) = ds.split_at(120);
    let (train_x, test_x) = preprocess_4x4(&train, &test);
    let to_y = |d: &postvar::qdata::Dataset| -> Vec<f64> {
        d.labels
            .iter()
            .map(|&l| {
                if l == FashionClass::Shirt.label() {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    };
    let (train_y, test_y) = (to_y(&train), to_y(&test));
    println!(
        "coat-vs-shirt: {} train / {} test samples, 16 features each\n",
        train_x.len(),
        test_x.len()
    );

    // Classical logistic on raw pooled features.
    let mat = postvar::linalg::Mat::from_rows(&train_x);
    let tmat = postvar::linalg::Mat::from_rows(&test_x);
    let logistic = LogisticRegression::fit(&mat, &train_y, LogisticConfig::default());
    println!(
        "logistic baseline   : train acc {:.1}% | test acc {:.1}%",
        accuracy(&train_y, &logistic.predict_proba(&mat)) * 100.0,
        accuracy(&test_y, &logistic.predict_proba(&tmat)) * 100.0
    );

    // Variational QNN.
    let vqc = VariationalClassifier::fit_binary(
        fig8_ansatz(4),
        Strategy::default_observable(4),
        &train_x,
        &train_y,
        &VariationalConfig::default(),
    );
    let (_, tr) = vqc.evaluate_binary(&train_x, &train_y);
    let (_, te) = vqc.evaluate_binary(&test_x, &test_y);
    println!(
        "variational QNN     : train acc {:.1}% | test acc {:.1}%",
        tr * 100.0,
        te * 100.0
    );

    // Post-variational strategies.
    for (name, strategy) in [
        (
            "PV ansatz 1-order   ",
            Strategy::ansatz_expansion(fig8_ansatz(4), 1, Strategy::default_observable(4)),
        ),
        (
            "PV observable 2-local",
            Strategy::observable_construction(4, 2),
        ),
        (
            "PV hybrid 1o+1l     ",
            Strategy::hybrid(fig8_ansatz(4), 1, 1),
        ),
    ] {
        let generator = FeatureGenerator::new(strategy, FeatureBackend::Exact);
        let model =
            PostVarClassifier::fit(generator, &train_x, &train_y, LogisticConfig::default());
        let (_, tr) = model.evaluate(&train_x, &train_y);
        let (_, te) = model.evaluate(&test_x, &test_y);
        println!(
            "{name}: train acc {:.1}% | test acc {:.1}%",
            tr * 100.0,
            te * 100.0
        );
    }
}

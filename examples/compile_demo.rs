//! Compile demo: gate fusion + batched SoA simulation, verified live.
//!
//! Builds a representative circuit — the Fig. 7 column encoding followed
//! by entangling layers and single-qubit walls — compiles it once with
//! `qsim::compile`, prints the fusion statistics, and then checks the
//! equivalences CI relies on:
//!
//! 1. `apply_compiled` agrees with the uncompiled `apply_circuit` sweep
//!    to 1e-12 on every amplitude (fusion reorders floating-point work,
//!    so exact bit equality is not expected here);
//! 2. every lane of a `BatchedStateVector` is *bit-for-bit* identical to
//!    a standalone simulation of the same circuit (batching must never
//!    change a result — the serving invariant);
//! 3. the fused `EncodingPlan` produces bit-for-bit identical states
//!    through its one-state and batched entry points.
//!
//! Run: `cargo run --example compile_demo --release`

use postvar::prelude::*;
use postvar::pvqnn::EncodingPlan;
use postvar::qsim::{compile, BatchedStateVector};

/// A circuit exercising every fusion path: runs of single-qubit gates
/// (dense and diagonal), repeated two-qubit pairs, and lone entanglers.
fn demo_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
        c.push(Gate::Rz(q, 0.31 + 0.07 * q as f64));
        c.push(Gate::Ry(q, 0.83 - 0.05 * q as f64));
    }
    for q in 0..n - 1 {
        c.push(Gate::Cnot {
            control: q,
            target: q + 1,
        });
    }
    for q in 0..n {
        c.push(Gate::S(q));
        c.push(Gate::T(q));
        c.push(Gate::Phase(q, 0.21 * (q + 1) as f64));
    }
    c.push(Gate::Cz(0, n - 1));
    c.push(Gate::Swap(1, n - 2));
    for q in 0..n {
        c.push(Gate::Rx(q, 0.45 + 0.03 * q as f64));
    }
    c
}

fn bits(state: &StateVector) -> Vec<(u64, u64)> {
    state
        .amplitudes()
        .iter()
        .map(|a| (a.re.to_bits(), a.im.to_bits()))
        .collect()
}

fn main() {
    let n = 10;
    let circuit = demo_circuit(n);
    let compiled = compile(&circuit);
    println!(
        "compiled {} source gates down to {} fused ops ({:.2}x fusion) on {n} qubits",
        compiled.source_gates(),
        compiled.num_ops(),
        compiled.source_gates() as f64 / compiled.num_ops() as f64
    );

    // 1. Compiled vs uncompiled, to 1e-12.
    let direct = StateVector::from_circuit(&circuit);
    let fused = StateVector::from_compiled(&compiled);
    let max_err = direct
        .amplitudes()
        .iter()
        .zip(fused.amplitudes())
        .map(|(a, b)| (a - b).norm())
        .fold(0.0f64, f64::max);
    assert!(max_err < 1e-12, "compiled vs direct max |Δamp| = {max_err}");
    println!("compiled ≡ uncompiled: max |Δamp| = {max_err:.2e} (< 1e-12)");

    // 2. Batched lanes vs standalone, bit-for-bit — through both the
    //    gate-by-gate and the compiled execution paths.
    let lanes = 5;
    let mut batch = BatchedStateVector::zero_states(n, lanes);
    batch.apply_circuit(&circuit);
    let mut batch_compiled = BatchedStateVector::zero_states(n, lanes);
    batch_compiled.apply_compiled(&compiled);
    for l in 0..lanes {
        assert_eq!(bits(&batch.lane(l)), bits(&direct));
        assert_eq!(bits(&batch_compiled.lane(l)), bits(&fused));
    }
    println!("batched ≡ standalone: {lanes} lanes bit-for-bit, gate and compiled paths");

    // 3. EncodingPlan one-state vs batched, bit-for-bit.
    let points: Vec<Vec<f64>> = (0..8)
        .map(|i| (0..16).map(|j| 0.2 + 0.13 * ((i + j) % 9) as f64).collect())
        .collect();
    let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
    let plan = EncodingPlan::new(16, 4);
    let encoded = plan.encode_batch(&refs);
    for (l, x) in refs.iter().enumerate() {
        assert_eq!(bits(&encoded.lane(l)), bits(&plan.encode_one(x)));
    }
    println!(
        "encoding plan ≡ per-point: {} points bit-for-bit (16 features, 4 qubits)",
        refs.len()
    );

    println!("PASS");
}

//! Fault-domain walkthrough: a QPU device goes dark mid-batch, the pool
//! retries, fails the stranded jobs over to healthy devices, trips the
//! circuit breaker into quarantine — then, after the cooldown, a
//! half-open probe re-admits the recovered device. All on deterministic
//! simulated time, with every completed result bit-for-bit identical to
//! a fault-free pool.
//!
//! Run: `cargo run --release --example faults_demo`

use hpcq::{
    BreakerConfig, CircuitJob, DeviceHealth, FaultPolicy, FaultSchedule, QpuConfig, QpuPool,
    SchedulePolicy,
};
use pauli::{local_paulis, PauliString};
use qsim::{Circuit, Gate};

/// One 8-qubit circuit job per id.
fn jobs(ids: std::ops::Range<u64>) -> Vec<CircuitJob> {
    let obs: Vec<PauliString> = local_paulis(8, 1);
    ids.map(|id| {
        let mut c = Circuit::new(8);
        for layer in 0..3 {
            for q in 0..8 {
                c.push(Gate::Ry(q, 0.09 * (id as f64 + layer as f64 + q as f64)));
            }
            for q in 0..7 {
                c.push(Gate::Cnot {
                    control: q,
                    target: q + 1,
                });
            }
        }
        CircuitJob::new(id, c, obs.clone(), None)
    })
    .collect()
}

fn health_line(pool: &QpuPool) -> String {
    pool.device_health()
        .iter()
        .enumerate()
        .map(|(d, h)| {
            format!(
                "dev{d}={}",
                match h {
                    DeviceHealth::Healthy => "healthy",
                    DeviceHealth::Degraded => "degraded",
                    DeviceHealth::Quarantined => "QUARANTINED",
                }
            )
        })
        .collect::<Vec<_>>()
        .join("  ")
}

fn main() {
    println!("== fault-domain walkthrough: outage -> failover -> quarantine -> recovery ==\n");

    // Three devices; device 0 is dark from 50 µs to 400 µs of simulated
    // time. The breaker trips after 3 consecutive failures and probes
    // again after a 300 µs cooldown — by then the outage is over.
    let mut configs = vec![QpuConfig::default(); 3];
    configs[0] = QpuConfig {
        faults: FaultSchedule::none().with_outage(50_000, 400_000),
        ..Default::default()
    };
    let mut pool = QpuPool::heterogeneous(configs, SchedulePolicy::WorkStealing).with_fault_policy(
        FaultPolicy {
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown_ns: 300_000,
            },
            ..Default::default()
        },
    );

    // A fault-free twin for the bit-for-bit check.
    let mut clean = QpuPool::homogeneous(3, QpuConfig::default(), SchedulePolicy::WorkStealing);

    println!("phase 1: 24 jobs while device 0 is dark [50 us, 400 us)");
    let (outcomes, report) = pool.execute_batch(jobs(0..24));
    let completed = outcomes.iter().filter(|o| o.is_ok()).count();
    println!("  completed : {completed}/24");
    println!(
        "  recovery  : {} retries, {} failovers, {} breaker trips",
        report.faults.retries, report.faults.failovers, report.faults.breaker_trips
    );
    println!("  health    : {}", health_line(&pool));
    assert!(
        pool.device_health()[0] == DeviceHealth::Quarantined,
        "the dark device must be quarantined"
    );

    let (clean_outcomes, _) = clean.execute_batch(jobs(0..24));
    let identical = outcomes
        .iter()
        .zip(clean_outcomes.iter())
        .all(|(a, b)| match (a, b) {
            (Ok(x), Ok(y)) => x.values == y.values,
            _ => false,
        });
    println!("  bit-check : chaos results identical to fault-free pool: {identical}");
    assert!(identical);

    println!("\nphase 2: 24 more jobs after the cooldown elapses");
    let (outcomes2, report2) = pool.execute_batch(jobs(24..48));
    let completed2 = outcomes2.iter().filter(|o| o.is_ok()).count();
    println!("  completed : {completed2}/24");
    println!(
        "  recovery  : {} half-open probes re-admitted the device",
        pool.fault_stats().probes
    );
    println!("  health    : {}", health_line(&pool));
    println!(
        "  placement : {:?} jobs per device (device 0 serving again)",
        report2.jobs_per_device
    );
    assert_eq!(completed2, 24);
    assert!(
        pool.device_health()[0] == DeviceHealth::Healthy,
        "the recovered device must be re-admitted"
    );
    assert!(pool.fault_stats().probes >= 1, "recovery needs a probe");
    assert!(report2.jobs_per_device[0] > 0, "device 0 must serve again");

    println!("\nevery fault was absorbed by retries, failover, and the breaker —");
    println!("no panics, no lost jobs, and completed values bit-identical throughout.");
}

//! The hybrid HPC-QC pipeline: Algorithm-1 feature jobs scattered across
//! a simulated QPU pool, classical convex fit on the host, with stage
//! timing and device utilization — the system view of the SC title.
//!
//! Run: `cargo run --example hpc_pipeline --release`

use postvar::hpcq::{CircuitJob, HybridPipeline, QpuConfig, QpuPool, SchedulePolicy};
use postvar::ml::LogisticConfig;
use postvar::prelude::*;

fn main() {
    // Workload: hybrid strategy on 40 coat/shirt samples with shot noise.
    let ds = fashion_synthetic(
        &[FashionClass::Coat, FashionClass::Shirt],
        20,
        7,
        &postvar::qdata::SynthConfig::default(),
    );
    let (train, _) = ds.split_at(40);
    let (train_x, _) = preprocess_4x4(&train, &postvar::qdata::Dataset::default());
    let labels: Vec<f64> = train
        .labels
        .iter()
        .map(|&l| {
            if l == FashionClass::Shirt.label() {
                1.0
            } else {
                0.0
            }
        })
        .collect();

    let strategy = Strategy::hybrid(fig8_ansatz(4), 1, 1);
    let generator = FeatureGenerator::new(strategy, FeatureBackend::Exact);
    let p = generator.strategy().num_ansatze();
    let observables = generator.strategy().observables().to_vec();

    // One job per (sample, shifted ansatz); 512 shots per observable.
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for x in &train_x {
        for a in 0..p {
            jobs.push(CircuitJob::new(
                id,
                generator.circuit_for(x, a),
                observables.clone(),
                Some(512),
            ));
            id += 1;
        }
    }
    println!(
        "dispatching {} circuit jobs ({} samples × {} ansätze, {} observables each)",
        jobs.len(),
        train_x.len(),
        p,
        observables.len()
    );

    // 4-QPU pool with work stealing.
    let pool = QpuPool::homogeneous(4, QpuConfig::default(), SchedulePolicy::WorkStealing);
    let mut pipeline = HybridPipeline::new(pool);
    let samples = train_x.len();
    let q_obs = observables.len();

    let (accuracy_train, report) = pipeline
        .run(jobs, |results| {
            // Classical stage: assemble Q and fit the logistic head.
            let rows: Vec<Vec<f64>> = (0..samples)
                .map(|i| {
                    let mut row = Vec::with_capacity(p * q_obs);
                    for a in 0..p {
                        row.extend_from_slice(&results[i * p + a].values);
                    }
                    row
                })
                .collect();
            let mat = postvar::linalg::Mat::from_rows(&rows);
            let head = LogisticRegression::fit(&mat, &labels, LogisticConfig::default());
            accuracy(&labels, &head.predict_proba(&mat))
        })
        .expect("healthy pool completes every job");

    println!("\npipeline report:");
    println!(
        "  quantum stage : {:.3}s ({:.0}% of total)",
        report.quantum_secs,
        report.quantum_fraction() * 100.0
    );
    println!("  classical fit : {:.3}s", report.classical_secs);
    println!(
        "  sim makespan  : {:.3}s on {} devices",
        report.pool.sim_makespan_secs,
        report.pool.jobs_per_device.len()
    );
    println!("  device util   : {:.0}%", report.pool.utilization * 100.0);
    println!("  jobs/device   : {:?}", report.pool.jobs_per_device);
    println!(
        "\ntrain accuracy with 512-shot features: {:.1}%",
        accuracy_train * 100.0
    );
}

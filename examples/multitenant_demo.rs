//! Multi-tenant overload demo: replay a committed flash-crowd arrival
//! trace (`examples/traces/flash_crowd.jsonl`) against the inference
//! server and watch weighted-fair admission keep the steady tenant
//! whole while the crowd's excess is shed with typed rejections.
//!
//! Run: `cargo run --release --example multitenant_demo`

use pvqnn::features::FeatureBackend;
use pvqnn::model::RegressorMode;
use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
use serve::{
    demo_catalogue, replay_trace, ArrivalTrace, Prediction, Server, ServerConfig, TenantId,
};

const TRACE: &str = include_str!("traces/flash_crowd.jsonl");

fn main() {
    println!("== multi-tenant serving under a flash crowd ==\n");

    // The committed trace: tenant 1 steady at 2k req/s with a 20 ms
    // deadline, tenant 2 quiet until t = 10 ms, then 200 requests in
    // 0.8 ms — ~125x tenant 1's rate against a queue sized for neither.
    let trace = ArrivalTrace::from_jsonl(TRACE).expect("committed trace parses");
    println!(
        "loaded trace: {} arrivals from {} tenants over {:.0} ms",
        trace.len(),
        trace.tenants().len(),
        trace.events().last().map_or(0, |e| e.at_ns) as f64 / 1e6,
    );

    let points = demo_catalogue(16);
    let y: Vec<f64> = (0..16).map(|i| (i as f64 * 0.31).sin()).collect();
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    let model = PostVarRegressor::fit(generator, &points, &y, RegressorMode::Ridge(1e-6));
    // Standalone predictions — every served response must match these
    // bit-for-bit, flash crowd or not.
    let expected: Vec<Prediction> = points
        .iter()
        .map(|p| Prediction::Value(model.predict(std::slice::from_ref(p))[0]))
        .collect();

    // A small queue so the crowd actually overflows it: capacity 32,
    // brownout trips at 16, fair share 4 per tenant while shedding.
    let server = Server::new(ServerConfig {
        queue_capacity: 32,
        high_water: 16,
        ..Default::default()
    });
    server.deploy(model);
    server.set_tenant_weight(TenantId(1), 1);
    server.set_tenant_weight(TenantId(2), 1);

    let report = replay_trace(&server, &points, &trace, 2_000_000, Some(&expected));

    println!("\nwindowed monitor (2 ms windows of simulated time):");
    println!("  t(ms)  depth  level             served  shed");
    for s in &report.samples {
        println!(
            "  {:>5.0}  {:>5}  {:<16}  {:>6}  {:>4}",
            s.t_ns as f64 / 1e6,
            s.queue_depth,
            s.level.to_string(),
            s.completed,
            s.shed
        );
    }

    println!("\nper-tenant outcome:");
    for t in &report.stats.per_tenant {
        println!(
            "  tenant {}: {:>3} offered -> {:>3} served, {:>3} shed | availability {:>5.1}% | p99 {:.2} ms",
            t.tenant.0,
            t.submitted,
            t.completed,
            t.shed,
            t.availability() * 100.0,
            t.p99_ms
        );
    }

    let steady = report.stats.tenant(TenantId(1)).expect("steady tenant");
    let crowd = report.stats.tenant(TenantId(2)).expect("crowd tenant");
    assert_eq!(
        steady.completed, steady.submitted,
        "steady tenant lost requests to the flash crowd"
    );
    assert!(
        crowd.shed > 0,
        "the flash crowd should overflow its fair share"
    );
    assert_eq!(report.mismatches, 0, "served predictions diverged bitwise");
    assert_eq!(
        report.offered,
        report.completed + report.shed + report.dropped,
        "every arrival must be served, shed, or dropped — nothing lost"
    );

    println!(
        "\nPASS: the steady tenant kept 100% availability and bit-identical predictions while"
    );
    println!(
        "the crowd's excess ({} of {} requests) was shed with typed rejections.",
        crowd.shed, crowd.submitted
    );
}

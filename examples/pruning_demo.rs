//! Circuit pruning (§IV.A Eq. (17), §IV.C Eq. (25)): detect flat
//! parameters from data and shrink the shift ensemble before spending
//! any more quantum measurements on it.
//!
//! Run: `cargo run --example pruning_demo --release`

use postvar::prelude::*;
use postvar::pvqnn::pruning::{prune_by_fidelity, prune_by_gradient};
use postvar::qsim::{Gate, ParamCircuit, RotAxis};

fn main() {
    // An ansatz with a deliberately dead parameter: RZ on qubit 3 with no
    // entangler touching it — it can never influence ⟨Z₀⟩.
    let mut ansatz = ParamCircuit::new(4);
    ansatz.push_rot(RotAxis::Y, 0);
    ansatz.push_rot(RotAxis::Y, 1);
    ansatz.push_fixed(Gate::Cnot {
        control: 0,
        target: 1,
    });
    ansatz.push_rot(RotAxis::Y, 2);
    ansatz.push_fixed(Gate::Cnot {
        control: 1,
        target: 2,
    });
    ansatz.push_rot(RotAxis::Z, 3); // dead weight

    let strategy = Strategy::ansatz_expansion(ansatz, 2, Strategy::default_observable(4));
    println!(
        "before pruning: {} shifted circuits (order-2 grid over k = 4 params)",
        strategy.num_ansatze()
    );

    let data: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            (0..16)
                .map(|j| 0.4 + 0.31 * ((i * 5 + j) % 9) as f64)
                .collect()
        })
        .collect();

    // Gradient-based pruning (needs the observable).
    let report = prune_by_gradient(&strategy, &data, &Strategy::default_observable(4), 1e-8);
    println!("\ngradient pruning (Eq. 17):");
    for (u, score) in report.scores.iter().enumerate() {
        let flag = if report.flat_params.contains(&u) {
            "  ← pruned"
        } else {
            ""
        };
        println!("  param {u}: MSE of ±π/2 expectation gap = {score:.3e}{flag}");
    }
    println!(
        "  kept {} of {} circuits",
        report.kept_shifts.len(),
        strategy.num_ansatze()
    );

    // Fidelity-based pruning (observable-free, Eq. 25).
    let fid = prune_by_fidelity(&strategy, &data, 1e-10);
    println!("\nfidelity pruning (Eq. 25):");
    for (u, score) in fid.scores.iter().enumerate() {
        let flag = if fid.flat_params.contains(&u) {
            "  ← pruned"
        } else {
            ""
        };
        println!("  param {u}: 1 − mean F(ρ₊, ρ₋) = {score:.3e}{flag}");
    }

    let before = strategy.num_neurons();
    let pruned = report.apply(strategy);
    println!(
        "\npruned strategy: m = {} neurons (was {before})",
        pruned.num_neurons()
    );
    println!("note the contrast: gradient pruning is observable-specific — only param 0");
    println!("feeds forward into ⟨Z₀⟩ (CNOT controls never push target info back), so");
    println!("params 1–2 are flat FOR THIS OBSERVABLE while fidelity pruning correctly");
    println!("reports them as live in state space. Param 3 is dead under both tests.");
    println!("Every dropped circuit is a quantum execution the hardware never pays for.");
}

//! Quickstart: the post-variational pipeline in ~60 lines.
//!
//! Encodes a 4×4 feature patch (Fig. 7), builds the Fig. 8 ansatz, renders
//! both circuits, generates post-variational features for a tiny dataset
//! under the hybrid strategy, and fits the closed-form linear head.
//!
//! Run: `cargo run --example quickstart --release`

use postvar::prelude::*;
use postvar::pvqnn::model::{PostVarRegressor, RegressorMode};
use postvar::qsim::render::render_circuit;

fn main() {
    // 1. Data encoding (Fig. 7): 16 features in [0, 2π) → 4 qubits.
    let features: Vec<f64> = (0..16).map(|i| 0.35 * (i % 7) as f64).collect();
    let encoding = fig7_encoding(&features);
    println!(
        "Fig. 7 data-encoding circuit:\n{}",
        render_circuit(&encoding)
    );

    // 2. The Fig. 8 ansatz at a first-order shift (+π/2 on parameter 0).
    let ansatz = fig8_ansatz(4);
    let mut shift = vec![0.0; ansatz.num_params()];
    shift[0] = std::f64::consts::FRAC_PI_2;
    println!(
        "Fig. 8 ansatz at shift +π/2·e₀ (identity gates elided):\n{}",
        render_circuit(&ansatz.bind_optimized(&shift))
    );

    // 3. A hybrid (1-order, 1-local) strategy: p = 17 ansätze × q = 13
    //    observables = 221 quantum neurons.
    let strategy = Strategy::hybrid(fig8_ansatz(4), 1, 1);
    println!(
        "strategy: p = {} ansätze × q = {} observables = m = {} neurons",
        strategy.num_ansatze(),
        strategy.num_observables(),
        strategy.num_neurons()
    );

    // 4. Generate features for a toy dataset and fit a linear target.
    let data: Vec<Vec<f64>> = (0..24)
        .map(|i| {
            (0..16)
                .map(|j| 0.3 + 0.21 * ((i * 3 + j) % 11) as f64)
                .collect()
        })
        .collect();
    let generator = FeatureGenerator::new(strategy, FeatureBackend::Exact);
    let q = generator.generate(&data);
    println!("feature matrix Q: {} × {}", q.rows(), q.cols());

    // Target: a known combination of the quantum features.
    let alpha_true: Vec<f64> = (0..q.cols())
        .map(|j| ((j % 5) as f64 - 2.0) * 0.1)
        .collect();
    let y = q.matvec(&alpha_true);

    let model = PostVarRegressor::fit(generator, &data, &y, RegressorMode::Pinv);
    println!(
        "closed-form head α = Q⁺Y recovers the target: train RMSE = {:.2e}",
        model.rmse(&data, &y)
    );

    // 5. The same state, measured three ways.
    let state = StateVector::from_circuit(&fig7_encoding(&features));
    let z0 = PauliString::parse("IIIZ").unwrap();
    let exact = state.expectation(&z0);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let sampled = postvar::qsim::estimate_pauli_with_shots(&state, &z0, 4096, &mut rng);
    let shadows = {
        let protocol = ShadowProtocol::new(4096, 2);
        ShadowEstimator::new(protocol.acquire(&state), 8).estimate(&z0)
    };
    println!("⟨Z₀⟩: exact {exact:.4} | 4096 shots {sampled:.4} | 4096 shadows {shadows:.4}");
}

//! Online serving demo: deploy a trained post-variational classifier
//! behind the micro-batching inference server, stream Zipf-skewed
//! traffic at it, hot-swap a retrained version with zero downtime, and
//! watch the admission controller shed an overload burst.
//!
//! Run: `cargo run --release --example serving_demo`

use pvqnn::features::FeatureBackend;
use pvqnn::{FeatureGenerator, PostVarClassifier, Strategy};
use serve::{
    demo_catalogue as catalogue, run_closed_loop, LoadGenConfig, Rejected, Server, ServerConfig,
};

fn train(epochs: usize) -> PostVarClassifier {
    let data = catalogue(24);
    let labels: Vec<f64> = (0..24).map(|i| (i % 2) as f64).collect();
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    PostVarClassifier::fit(
        generator,
        &data,
        &labels,
        ml::LogisticConfig {
            epochs,
            ..Default::default()
        },
    )
}

fn main() {
    println!("== serving a post-variational classifier ==\n");
    let server = Server::new(ServerConfig::default());
    let v1 = server.deploy(train(40));
    println!("deployed model {v1} (40 training epochs)");

    // Phase 1: Zipf-skewed closed-loop traffic against v1.
    let points = catalogue(32);
    let report = run_closed_loop(
        &server,
        &points,
        &LoadGenConfig {
            clients: 6,
            total_requests: 600,
            zipf_s: 1.2,
            seed: 7,
        },
    );
    let stats = &report.stats;
    println!(
        "served {} requests: {:.0} rows/s (simulated), p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        report.completed, report.rows_per_s, stats.p50_ms, stats.p95_ms, stats.p99_ms
    );
    println!(
        "feature cache: {:.0}% hits — {} unique simulations covered {} rows (mean batch {:.1})\n",
        report.cache_hit_rate * 100.0,
        stats.unique_simulations,
        stats.completed,
        stats.mean_batch_size()
    );

    // Phase 2: hot-swap a retrained model; in-flight work drains on v1,
    // new traffic serves v2, and the shared-generator cache carries over.
    let v2 = server.deploy(train(400));
    println!("hot-swapped to model {v2} (400 epochs) — no queue pause, cache retained");
    let probe = points[0].clone();
    let handle = server.submit(probe.clone()).expect("admitted");
    server.drain();
    let response = handle.wait().expect("served");
    println!(
        "probe request now served by {} (cache hit: {}), p(y=1) = {:.4}\n",
        response.model,
        response.cache_hit,
        response.prediction.as_f64()
    );

    // Phase 3: overload. A burst far beyond the high-water mark is shed
    // with typed rejections instead of building unbounded latency.
    let burst_server = Server::new(ServerConfig {
        queue_capacity: 48,
        high_water: 24,
        ..Default::default()
    });
    burst_server.deploy(train(40));
    let (mut served, mut shed) = (0, 0);
    let mut handles = Vec::new();
    for i in 0..96 {
        match burst_server.submit(points[i % points.len()].clone()) {
            Ok(h) => handles.push(h),
            Err(Rejected::TenantOverShare { .. }) => shed += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    burst_server.drain();
    for h in handles {
        if h.wait().is_ok() {
            served += 1;
        }
    }
    println!("overload burst: 96 requests -> {served} served, {shed} shed at the high-water mark");
    println!(
        "admission reopened after drain: {}",
        burst_server.submit(points[0].clone()).is_ok()
    );
    let _ = burst_server.drain();
    println!(
        "\nmicro-batching + feature caching turn per-request quantum cost into O(unique inputs);"
    );
    println!(
        "versioned hot-swap and load shedding keep the endpoint live through deploys and bursts."
    );
}

//! Classical shadows vs direct measurement on a post-variational state:
//! the measurement-reduction trade of §IV.B / Proposition 2.
//!
//! Run: `cargo run --example shadows_demo --release`

use postvar::pauli::local_paulis;
use postvar::prelude::*;
use postvar::shadows::pauli_shadow_norm_sq;
use rand::SeedableRng;

fn main() {
    // Prepare an encoded state.
    let x: Vec<f64> = (0..16).map(|i| 0.5 + 0.29 * i as f64).collect();
    let state = StateVector::from_circuit(&fig7_encoding(&x));

    // All ≤2-local observables on 4 qubits (q = 67, Eq. (18)).
    let family = local_paulis(4, 2);
    println!(
        "estimating {} observables on one 4-qubit state\n",
        family.len()
    );

    // Exact ground truth.
    let exact: Vec<f64> = family.iter().map(|p| state.expectation(p)).collect();

    // Direct: 256 shots *per observable* → 17k total measurements.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let direct: Vec<f64> = family
        .iter()
        .map(|p| postvar::qsim::estimate_pauli_with_shots(&state, p, 256, &mut rng))
        .collect();
    let direct_total = 256 * family.len();

    // Shadows: ONE pool of 17k snapshots shared by every observable.
    let protocol = ShadowProtocol::new(direct_total, 5);
    let est = ShadowEstimator::new(protocol.acquire(&state), 12);
    let shadow: Vec<f64> = est.estimate_many(&family);

    let max_err = |v: &[f64]| -> f64 {
        v.iter()
            .zip(exact.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    };
    println!("measurement budget    : {direct_total} (identical for both)");
    println!("direct max |error|    : {:.4}", max_err(&direct));
    println!("shadows max |error|   : {:.4}", max_err(&shadow));

    // Shadow norms by locality — why the error grows with weight.
    println!("\nshadow norms ‖P‖_S² = 3^|P|:");
    for l in 0..=2usize {
        let p = family.iter().find(|p| p.weight() == l).unwrap();
        println!("  |P| = {l}: ‖{p}‖_S² = {}", pauli_shadow_norm_sq(p));
    }
    println!("\nProposition 2: shadows reuse every snapshot across all 67 observables,");
    println!("paying only the 3^L variance factor — the regime where they win.");
}

//! Scale-out serving demo: a consistent-hash [`Router`] fronting four
//! shard servers on one simulated clock — cache-local routing, a
//! fleet-wide brownout ladder, staged shard-by-shard rollout with
//! automatic rollback, and hash-ring rebalancing on shard add.
//!
//! Run: `cargo run --release --example sharded_demo`

use pvqnn::features::FeatureBackend;
use pvqnn::model::RegressorMode;
use pvqnn::{FeatureGenerator, PostVarRegressor, Strategy};
use serve::{demo_catalogue, Prediction, RolloutCriteria, Router, RouterConfig, ServerConfig};

fn fit(points: &[Vec<f64>], scale: f64) -> PostVarRegressor {
    let y: Vec<f64> = (0..points.len())
        .map(|i| scale * (i as f64 * 0.37).sin())
        .collect();
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    PostVarRegressor::fit(generator, points, &y, RegressorMode::Ridge(1e-6))
}

fn main() {
    println!("== sharded serving behind a consistent-hash router ==\n");

    let points = demo_catalogue(24);
    let v1 = fit(&points, 1.0);
    let expected: Vec<Prediction> = points
        .iter()
        .map(|p| Prediction::Value(v1.predict(std::slice::from_ref(p))[0]))
        .collect();

    let router = Router::new(RouterConfig {
        shards: 4,
        shard: ServerConfig {
            default_deadline_ns: 0,
            ..Default::default()
        },
        ..Default::default()
    });
    router.deploy(v1.clone());

    // Each quantized data point hashes to exactly one shard, so its
    // cached feature rows live in exactly one place fleet-wide.
    println!("consistent-hash placement of the 24-point catalogue:");
    let mut per_shard = [0usize; 4];
    for p in &points {
        per_shard[router.shard_for_point(p) as usize] += 1;
    }
    for (shard, count) in per_shard.iter().enumerate() {
        println!("  shard {shard}: {count} points");
    }

    // Serve every point three times; predictions must be bit-for-bit
    // what a lone `predict` call returns, and the fleet-wide cache must
    // simulate each unique point exactly once.
    let mut handles = Vec::new();
    for round in 0..3 {
        for (i, p) in points.iter().enumerate() {
            handles.push((i, round, router.submit(p.clone()).expect("admitted")));
        }
    }
    router.drain();
    for (i, _, h) in handles {
        let r = h.wait().expect("served");
        assert_eq!(r.prediction, expected[i], "sharding must be invisible");
    }
    let stats = router.stats();
    println!(
        "\nserved {} rows in {:.2} simulated ms across {} rounds",
        stats.completed,
        stats.sim_elapsed_ns as f64 / 1e6,
        stats.rounds
    );
    let unique: u64 = stats
        .per_shard
        .iter()
        .map(|(_, s)| s.unique_simulations)
        .sum();
    println!(
        "fleet-wide cache locality: {unique} unique simulations for {} rows (one per point)",
        stats.completed
    );
    println!(
        "shard imbalance: {:.3} (max routed / mean)",
        stats.shard_imbalance()
    );
    assert_eq!(unique as usize, points.len());

    // Staged rollout of a good candidate: probe each shard before and
    // after its swap; every shard passes, the fleet converges on v2.
    let v2 = fit(&points, 1.02);
    let probes: Vec<Vec<f64>> = points.iter().take(8).cloned().collect();
    let criteria = RolloutCriteria {
        targets: v2.predict(&probes),
        probes,
        max_error_regression: 0.10,
        max_latency_regression: 0.50,
    };
    let report = router.staged_rollout(v2, &criteria);
    println!(
        "\nstaged rollout of v2: {} shards swapped, rolled_back = {}",
        report.shards.iter().filter(|s| s.swapped).count(),
        report.rolled_back
    );
    assert!(report.succeeded);

    // Staged rollout of a broken candidate: the first shard's post-swap
    // probe regresses, the rollout stops and rolls every shard back.
    let broken = fit(&points, 25.0);
    let report = router.staged_rollout(broken, &criteria);
    println!(
        "staged rollout of a broken model: stopped after shard {}, rolled_back = {}",
        report.shards.len() - 1,
        report.rolled_back
    );
    assert!(!report.succeeded && report.rolled_back);

    // Elastic rebalance: adding a shard moves only the keys the ring
    // assigns to it — every other point keeps its shard (and its cache).
    let before: Vec<u32> = points.iter().map(|p| router.shard_for_point(p)).collect();
    let new_shard = router.add_shard();
    let moved = points
        .iter()
        .zip(&before)
        .filter(|(p, &old)| router.shard_for_point(p) != old)
        .count();
    println!(
        "\nadded shard {new_shard}: {moved} of {} points migrated, {} stayed put",
        points.len(),
        points.len() - moved
    );
    assert!(
        moved <= points.len().div_ceil(4),
        "ring must move ≤ ~1/N of keys"
    );

    println!("\nPASS: cache-local routing, bit-identical predictions, staged rollout");
    println!("with automatic rollback, and minimal-migration rebalancing all hold.");
}

//! # postvar — Post-variational quantum neural networks on a hybrid HPC-QC system
//!
//! Facade crate re-exporting the full workspace. See the README for a tour
//! and `DESIGN.md` for the system inventory.
//!
//! ```
//! use postvar::prelude::*;
//!
//! // Four-qubit encoded state, one 1-local observable.
//! let features = vec![0.3; 16];
//! let circuit = fig7_encoding(&features);
//! let state = StateVector::from_circuit(&circuit);
//! let z0 = PauliString::parse("IIIZ").unwrap();
//! let val = state.expectation(&z0);
//! assert!(val.abs() <= 1.0 + 1e-12);
//! ```

pub use hpcq;
pub use linalg;
pub use ml;
pub use pauli;
pub use pvqnn;
pub use qdata;
pub use qsim;
pub use serve;
pub use shadows;

/// Convenience re-exports of the most common types across the workspace.
pub mod prelude {
    pub use hpcq::{HybridPipeline, QpuConfig, QpuDevice, QpuPool, SchedulePolicy};
    pub use linalg::Mat;
    pub use ml::{accuracy, LogisticRegression, Mlp, SoftmaxRegression};
    pub use pauli::{local_paulis, Pauli, PauliString, PauliSum};
    pub use pvqnn::ansatz::fig8_ansatz;
    pub use pvqnn::encoding::fig7_encoding;
    pub use pvqnn::features::{FeatureBackend, FeatureGenerator};
    pub use pvqnn::model::{PostVarClassifier, PostVarRegressor};
    pub use pvqnn::strategy::{Strategy, StrategyKind};
    pub use pvqnn::variational::VariationalClassifier;
    pub use qdata::{fashion_synthetic, preprocess_4x4, FashionClass};
    pub use qsim::{Circuit, Gate, ParamCircuit, StateVector};
    pub use serve::{Server, ServerConfig};
    pub use shadows::{ShadowEstimator, ShadowProtocol};
}

//! The paper's central representational claims, verified numerically.
//!
//! 1. **Appendix A / §III.D (CQO)**: any variational observable
//!    `U†(θ)OU(θ)` lies in the span of Pauli strings, so a
//!    post-variational model with the full 4ⁿ observable family can
//!    reproduce the variational estimator *exactly* — for every θ — by a
//!    classical linear combination.
//! 2. **Heisenberg equivalence**: `tr(O·U ρ U†) = tr(U†OU·ρ)` — the
//!    Schrödinger and Heisenberg pictures agree on the simulator.

use postvar::linalg::lstsq;
use postvar::pauli::{decompose_hermitian, local_paulis, CMat, PauliString};
use postvar::prelude::*;
use postvar::pvqnn::encoding::column_encoding;
use postvar::qsim::C64;

/// Dense unitary of a circuit, built by feeding basis states through the
/// simulator (small n only).
fn circuit_unitary(c: &postvar::qsim::Circuit) -> CMat {
    let n = c.num_qubits();
    let dim = 1usize << n;
    let mut u = CMat::zeros(dim, dim);
    for col in 0..dim {
        let mut amps = vec![C64::new(0.0, 0.0); dim];
        amps[col] = C64::new(1.0, 0.0);
        let mut s = StateVector::from_amplitudes(amps);
        s.apply_circuit(c);
        for (row, a) in s.amplitudes().iter().enumerate() {
            u[(row, col)] = *a;
        }
    }
    u
}

#[test]
fn variational_observable_decomposes_into_paulis() {
    // O(θ) = U†(θ) Z₀ U(θ) for a non-trivial θ on 3 qubits.
    let n = 3;
    let ansatz = postvar::pvqnn::ansatz::hardware_efficient_ansatz(n, 2);
    let theta: Vec<f64> = (0..ansatz.num_params())
        .map(|i| 0.4 + 0.21 * i as f64)
        .collect();
    let circuit = ansatz.bind(&theta);
    let u = circuit_unitary(&circuit);
    let z0 = postvar::pauli::pauli_to_dense(&PauliString::single(n, 0, postvar::pauli::Pauli::Z));
    let o_theta = u.dagger().matmul(&z0).matmul(&u);
    assert!(o_theta.is_hermitian(1e-10));

    // Full-locality decomposition reconstructs exactly (Appendix A).
    let terms = decompose_hermitian(&o_theta, n);
    let back = postvar::pauli::reconstruct_from_terms(&terms);
    assert!(back.max_abs_diff(&o_theta) < 1e-9);
    assert!(terms.num_terms() <= 4usize.pow(n as u32));
}

#[test]
fn full_locality_post_variational_reproduces_variational_exactly() {
    // For ANY θ, the variational predictions tr(O(θ)ρ(x)) must be a
    // linear combination of the full-locality post-variational features
    // tr(Pρ(x)) — so lstsq on Q must reach ~zero residual.
    let n = 3;
    let data: Vec<Vec<f64>> = (0..30)
        .map(|i| {
            (0..4 * n)
                .map(|j| 0.2 + 0.37 * ((i * 7 + j * 3) % 13) as f64)
                .collect()
        })
        .collect();

    // Variational side.
    let ansatz = postvar::pvqnn::ansatz::hardware_efficient_ansatz(n, 2);
    let theta: Vec<f64> = (0..ansatz.num_params())
        .map(|i| -0.3 + 0.17 * i as f64)
        .collect();
    let obs = PauliString::single(n, 0, postvar::pauli::Pauli::Z);
    let variational: Vec<f64> = data
        .iter()
        .map(|x| {
            let mut c = column_encoding(x, n);
            c.extend(&ansatz.bind(&theta));
            StateVector::from_circuit(&c).expectation(&obs)
        })
        .collect();

    // Post-variational side: FULL 4^n observable family, no ansatz.
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(n, n),
        FeatureBackend::Exact,
    );
    let q = generator.generate(&data);
    assert_eq!(q.cols(), 4usize.pow(n as u32));

    let alpha = lstsq(&q, &variational);
    let pred = q.matvec(&alpha);
    let max_err = pred
        .iter()
        .zip(variational.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_err < 1e-8,
        "full-locality CQO failed to reproduce the variational model: {max_err}"
    );
}

#[test]
fn truncated_locality_is_an_approximation() {
    // With L < n the reproduction is approximate — the error must be
    // nonzero for an entangling ansatz but shrink as L grows.
    let n = 3;
    let data: Vec<Vec<f64>> = (0..25)
        .map(|i| {
            (0..4 * n)
                .map(|j| 0.3 + 0.29 * ((i * 5 + j) % 11) as f64)
                .collect()
        })
        .collect();
    let ansatz = postvar::pvqnn::ansatz::hardware_efficient_ansatz(n, 2);
    let theta: Vec<f64> = (0..ansatz.num_params())
        .map(|i| 0.5 - 0.13 * i as f64)
        .collect();
    let obs = PauliString::single(n, 0, postvar::pauli::Pauli::Z);
    let target: Vec<f64> = data
        .iter()
        .map(|x| {
            let mut c = column_encoding(x, n);
            c.extend(&ansatz.bind(&theta));
            StateVector::from_circuit(&c).expectation(&obs)
        })
        .collect();

    let mut errors = Vec::new();
    for l in 1..=n {
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(n, l),
            FeatureBackend::Exact,
        );
        let q = generator.generate(&data);
        let alpha = lstsq(&q, &target);
        let pred = q.matvec(&alpha);
        let rmse = (pred
            .iter()
            .zip(target.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / data.len() as f64)
            .sqrt();
        errors.push(rmse);
    }
    assert!(
        errors[n - 1] < 1e-8,
        "full locality must be exact: {errors:?}"
    );
    assert!(
        errors[0] >= errors[n - 1],
        "error should not increase with locality: {errors:?}"
    );
}

#[test]
fn heisenberg_and_schroedinger_pictures_agree() {
    let n = 2;
    let x: Vec<f64> = (0..8).map(|i| 0.4 * (i + 1) as f64).collect();
    let encoding = column_encoding(&x, n);
    let ansatz = fig8_ansatz(n);
    let theta = vec![0.3, -0.7, 0.2, 0.9];
    let circuit = ansatz.bind(&theta);

    // Schrödinger: evolve the state, measure O.
    let mut full = encoding.clone();
    full.extend(&circuit);
    let schroedinger =
        StateVector::from_circuit(&full).expectation(&PauliString::parse("ZI").unwrap());

    // Heisenberg: conjugate the observable, measure on the encoded state.
    let u = circuit_unitary(&circuit);
    let z = postvar::pauli::pauli_to_dense(&PauliString::parse("ZI").unwrap());
    let o_theta = u.dagger().matmul(&z).matmul(&u);
    let terms = decompose_hermitian(&o_theta, n);
    let encoded = StateVector::from_circuit(&encoding);
    let heisenberg: f64 = terms
        .terms()
        .iter()
        .map(|(c, p)| c * encoded.expectation(p))
        .sum();

    assert!(
        (schroedinger - heisenberg).abs() < 1e-9,
        "{schroedinger} vs {heisenberg}"
    );
}

#[test]
fn local_pauli_family_sizes_match_eq18() {
    for (n, l, want) in [
        (3usize, 1usize, 10u128),
        (3, 2, 37),
        (4, 2, 67),
        (4, 4, 256),
    ] {
        assert_eq!(local_paulis(n, l).len() as u128, want);
        assert_eq!(postvar::pauli::local_pauli_count(n, l), want);
    }
}

//! End-to-end integration: synthetic garments → preprocessing → quantum
//! features → classical heads, across strategies and backends.

use postvar::ml::LogisticConfig;
use postvar::prelude::*;
use postvar::qdata::{Dataset, SynthConfig};

/// `(train_x, train_y, test_x, test_y)` for a two-class task.
type Split = (Vec<Vec<f64>>, Vec<f64>, Vec<Vec<f64>>, Vec<f64>);

fn coat_shirt(train_per_class: usize, test_per_class: usize, seed: u64) -> Split {
    let ds = fashion_synthetic(
        &[FashionClass::Coat, FashionClass::Shirt],
        train_per_class + test_per_class,
        seed,
        &SynthConfig::default(),
    );
    let (train, test) = ds.split_at(2 * train_per_class);
    let (train_x, test_x) = preprocess_4x4(&train, &test);
    let to_y = |d: &Dataset| -> Vec<f64> {
        d.labels
            .iter()
            .map(|&l| {
                if l == FashionClass::Shirt.label() {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    };
    let train_y = to_y(&train);
    let test_y = to_y(&test);
    (train_x, train_y, test_x, test_y)
}

#[test]
fn post_variational_beats_chance_on_coat_vs_shirt() {
    let (train_x, train_y, test_x, test_y) = coat_shirt(40, 10, 11);
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 2),
        FeatureBackend::Exact,
    );
    let model = PostVarClassifier::fit(generator, &train_x, &train_y, LogisticConfig::default());
    let (tr_loss, tr_acc) = model.evaluate(&train_x, &train_y);
    let (_, te_acc) = model.evaluate(&test_x, &test_y);
    assert!(tr_acc > 0.7, "train accuracy {tr_acc}");
    assert!(te_acc > 0.55, "test accuracy {te_acc}");
    assert!(tr_loss < 0.65, "train loss {tr_loss}");
}

#[test]
fn higher_locality_fits_training_data_better() {
    // The Table III trend: observable construction accuracy increases
    // with locality on the training set.
    let (train_x, train_y, _, _) = coat_shirt(30, 0, 13);
    let mut accs = Vec::new();
    for l in 1..=3 {
        let generator = FeatureGenerator::new(
            Strategy::observable_construction(4, l),
            FeatureBackend::Exact,
        );
        let model =
            PostVarClassifier::fit(generator, &train_x, &train_y, LogisticConfig::default());
        let (_, acc) = model.evaluate(&train_x, &train_y);
        accs.push(acc);
    }
    assert!(
        accs[2] >= accs[0] - 0.02,
        "3-local should not underperform 1-local on train: {accs:?}"
    );
}

#[test]
fn shot_noise_degrades_gracefully() {
    // Exact and 4096-shot features should give similar train accuracy.
    let (train_x, train_y, _, _) = coat_shirt(25, 0, 17);
    let strategy = Strategy::observable_construction(4, 1);
    let exact = PostVarClassifier::fit(
        FeatureGenerator::new(strategy.clone(), FeatureBackend::Exact),
        &train_x,
        &train_y,
        LogisticConfig::default(),
    );
    let noisy = PostVarClassifier::fit(
        FeatureGenerator::new(
            strategy,
            FeatureBackend::Shots {
                shots: 4096,
                seed: 5,
            },
        ),
        &train_x,
        &train_y,
        LogisticConfig::default(),
    );
    let (_, acc_exact) = exact.evaluate(&train_x, &train_y);
    let (_, acc_noisy) = noisy.evaluate(&train_x, &train_y);
    assert!(
        (acc_exact - acc_noisy).abs() < 0.15,
        "exact {acc_exact} vs shots {acc_noisy}"
    );
}

#[test]
fn multiclass_pipeline_runs_and_beats_chance() {
    let ds = fashion_synthetic(&[], 8, 3, &SynthConfig::default());
    let (train, _) = ds.split_at(80);
    let (train_x, _) = preprocess_4x4(&train, &Dataset::default());
    let generator = FeatureGenerator::new(
        Strategy::hybrid(fig8_ansatz(4), 1, 1),
        FeatureBackend::Exact,
    );
    let model = postvar::pvqnn::model::PostVarMulticlass::fit(
        generator,
        &train_x,
        &train.labels,
        10,
        postvar::ml::SoftmaxConfig::default(),
    );
    let (_, acc) = model.evaluate(&train_x, &train.labels);
    assert!(acc > 0.3, "10-class train accuracy {acc} (chance = 0.1)");
}

#[test]
fn variational_baseline_trains_without_panic() {
    let (train_x, train_y, _, _) = coat_shirt(10, 0, 19);
    let config = postvar::pvqnn::variational::VariationalConfig {
        epochs: 10,
        ..Default::default()
    };
    let model = VariationalClassifier::fit_binary(
        fig8_ansatz(4),
        Strategy::default_observable(4),
        &train_x,
        &train_y,
        &config,
    );
    let (loss, acc) = model.evaluate_binary(&train_x, &train_y);
    assert!(loss.is_finite());
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn preprocessing_bounds_respected_end_to_end() {
    let (train_x, _, test_x, _) = coat_shirt(15, 5, 23);
    for row in train_x.iter().chain(test_x.iter()) {
        assert_eq!(row.len(), 16);
        for &v in row {
            assert!(
                (0.0..std::f64::consts::TAU).contains(&v),
                "feature {v} out of [0,2π)"
            );
        }
    }
}

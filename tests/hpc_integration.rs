//! Cross-crate integration: the HPC-QC runtime must produce exactly the
//! same feature matrix as the in-process generator, and the pipeline must
//! scale the work without changing the answer.

use postvar::hpcq::{CircuitJob, QpuConfig, QpuPool, SchedulePolicy};
use postvar::prelude::*;

fn toy_data(d: usize) -> Vec<Vec<f64>> {
    (0..d)
        .map(|i| {
            (0..16)
                .map(|j| 0.3 + 0.19 * ((i * 3 + j * 5) % 17) as f64)
                .collect()
        })
        .collect()
}

/// Builds one job per (sample, shift) from a feature generator.
fn jobs_for(generator: &FeatureGenerator, data: &[Vec<f64>]) -> Vec<CircuitJob> {
    let p = generator.strategy().num_ansatze();
    let obs = generator.strategy().observables().to_vec();
    let mut out = Vec::new();
    let mut id = 0u64;
    for x in data {
        for a in 0..p {
            out.push(CircuitJob::new(
                id,
                generator.circuit_for(x, a),
                obs.clone(),
                None,
            ));
            id += 1;
        }
    }
    out
}

#[test]
fn pool_reproduces_in_process_features_exactly() {
    let data = toy_data(6);
    let generator = FeatureGenerator::new(
        Strategy::hybrid(fig8_ansatz(4), 1, 1),
        FeatureBackend::Exact,
    );
    let q_direct = generator.generate(&data);

    let jobs = jobs_for(&generator, &data);
    let mut pool = QpuPool::homogeneous(3, QpuConfig::default(), SchedulePolicy::WorkStealing);
    let (results, _) = pool.execute_batch(jobs);

    let p = generator.strategy().num_ansatze();
    let q_obs = generator.strategy().num_observables();
    for (i, _x) in data.iter().enumerate() {
        for a in 0..p {
            let job_values = &results[i * p + a].as_ref().expect("healthy pool").values;
            for b in 0..q_obs {
                let col = generator.strategy().column_of(a, b);
                let direct = q_direct[(i, col)];
                assert!(
                    (direct - job_values[b]).abs() < 1e-12,
                    "mismatch at sample {i}, shift {a}, obs {b}"
                );
            }
        }
    }
}

#[test]
fn policies_agree_on_exact_workloads() {
    let data = toy_data(4);
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 2),
        FeatureBackend::Exact,
    );
    let jobs = jobs_for(&generator, &data);
    let mut reference: Option<Vec<Vec<f64>>> = None;
    for policy in [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::LeastLoaded,
        SchedulePolicy::WorkStealing,
    ] {
        let mut pool = QpuPool::homogeneous(2, QpuConfig::default(), policy);
        let (results, report) = pool.execute_batch(jobs.clone());
        let values: Vec<Vec<f64>> = results
            .into_iter()
            .map(|r| r.expect("healthy pool").values)
            .collect();
        assert!(report.utilization > 0.0);
        match &reference {
            None => reference = Some(values),
            Some(r) => assert_eq!(r, &values, "{policy:?} diverged"),
        }
    }
}

#[test]
fn pipeline_feeds_classical_stage_with_complete_ordered_batch() {
    use postvar::hpcq::HybridPipeline;
    let data = toy_data(5);
    let generator = FeatureGenerator::new(
        Strategy::observable_construction(4, 1),
        FeatureBackend::Exact,
    );
    let jobs = jobs_for(&generator, &data);
    let n_jobs = jobs.len();
    let pool = QpuPool::homogeneous(2, QpuConfig::default(), SchedulePolicy::WorkStealing);
    let mut pipeline = HybridPipeline::new(pool);
    let (ok, report) = pipeline
        .run(jobs, |results| {
            results.len() == n_jobs && results.windows(2).all(|w| w[0].id < w[1].id)
        })
        .expect("healthy pool completes every job");
    assert!(ok, "classical stage saw incomplete or unordered results");
    assert!(report.total_secs() > 0.0);
}

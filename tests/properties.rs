//! Property-based tests (proptest) on the core invariants that everything
//! else leans on: Pauli algebra, simulator unitarity, SVD/pinv axioms,
//! shift-grid combinatorics, and loss bounds.

use postvar::linalg::{lstsq, pinv, Mat};
use postvar::pauli::{PauliString, PhaseI};
use postvar::prelude::{fig7_encoding, fig8_ansatz, FeatureBackend, FeatureGenerator, StateVector};
use postvar::pvqnn::strategy::Strategy as PvStrategy;
use postvar::qsim::{self, BatchedStateVector, Gate};
use proptest::prelude::*;

/// Strategy: a random Pauli string on `n` qubits as (x, z) masks.
fn pauli_string(n: usize) -> impl proptest::strategy::Strategy<Value = PauliString> {
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    (0..=mask, 0..=mask).prop_map(move |(x, z)| PauliString::from_masks(n, x, z))
}

/// Strategy: a random short circuit on `n` qubits.
fn circuit(n: usize, max_gates: usize) -> impl proptest::strategy::Strategy<Value = qsim::Circuit> {
    let gate = (0..6u8, 0..n, 0..n, -3.0f64..3.0).prop_map(move |(kind, q, q2, angle)| {
        let q2 = if q2 == q { (q + 1) % n } else { q2 };
        match kind {
            0 => Gate::H(q),
            1 => Gate::Rx(q, angle),
            2 => Gate::Ry(q, angle),
            3 => Gate::Rz(q, angle),
            4 => Gate::Cnot {
                control: q,
                target: q2,
            },
            _ => Gate::Cz(q, q2),
        }
    });
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = qsim::Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Strategy: a random circuit drawing from the full gate set the
/// compiler fuses — mixed dense/diagonal single-qubit runs, repeated and
/// interleaved two-qubit pairs, and identity-skippable gates (kind 13
/// emits a zero-angle `Rx`, which `compile` drops from the source count).
fn fusion_circuit(
    n: usize,
    max_gates: usize,
) -> impl proptest::strategy::Strategy<Value = qsim::Circuit> {
    let gate = (0..14u8, 0..n, 0..n, -3.0f64..3.0).prop_map(move |(kind, q, q2, angle)| {
        let q2 = if q2 == q { (q + 1) % n } else { q2 };
        match kind {
            0 => Gate::H(q),
            1 => Gate::X(q),
            2 => Gate::Y(q),
            3 => Gate::Z(q),
            4 => Gate::S(q),
            5 => Gate::T(q),
            6 => Gate::Rx(q, angle),
            7 => Gate::Ry(q, angle),
            8 => Gate::Rz(q, angle),
            9 => Gate::Phase(q, angle),
            10 => Gate::Cnot {
                control: q,
                target: q2,
            },
            11 => Gate::Cz(q, q2),
            12 => Gate::Swap(q, q2),
            _ => Gate::Rx(q, 0.0),
        }
    });
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = qsim::Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Strategy: a random device fault schedule — up to two windows, each an
/// outage or a degraded phase with a 1.5–8× latency multiplier.
fn chaos_schedule() -> impl proptest::strategy::Strategy<Value = postvar::hpcq::FaultSchedule> {
    // `kind10 < 15` selects an outage; otherwise it is the latency
    // multiplier ×10 of a degraded phase (1.5–8×).
    proptest::collection::vec((0u64..400_000, 1u64..300_000, 0u32..80), 0..3).prop_map(|windows| {
        let mut s = postvar::hpcq::FaultSchedule::none();
        for (start, len, kind10) in windows {
            s = if kind10 < 15 {
                s.with_outage(start, start + len)
            } else {
                s.with_degraded(start, start + len, kind10 as f64 / 10.0)
            };
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pauli_product_is_involutive_up_to_phase(a in pauli_string(5), b in pauli_string(5)) {
        // (AB)(BA) = A B B A = A·A = I with total phase product 1.
        let (ph_ab, ab) = a.mul(&b);
        let (ph_ba, ba) = b.mul(&a);
        let (ph_final, product) = ab.mul(&ba);
        prop_assert!(product.is_identity());
        prop_assert_eq!(ph_ab * ph_ba * ph_final, PhaseI::ONE);
    }

    #[test]
    fn pauli_commutation_symmetry(a in pauli_string(6), b in pauli_string(6)) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
        // Everything commutes with itself and the identity.
        prop_assert!(a.commutes_with(&a));
        prop_assert!(a.commutes_with(&PauliString::identity(6)));
    }

    #[test]
    fn pauli_weight_subadditive(a in pauli_string(6), b in pauli_string(6)) {
        let (_, c) = a.mul(&b);
        prop_assert!(c.weight() <= a.weight() + b.weight());
    }

    #[test]
    fn random_circuits_preserve_norm(c in circuit(4, 20)) {
        let s = StateVector::from_circuit(&c);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dagger_inverts_random_circuits(c in circuit(3, 15)) {
        let mut full = c.clone();
        full.extend(&c.dagger());
        let s = StateVector::from_circuit(&full);
        prop_assert!((s.probability(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expectations_bounded_by_one(c in circuit(3, 15), p in pauli_string(3)) {
        let s = StateVector::from_circuit(&c);
        let e = s.expectation(&p);
        prop_assert!(e.abs() <= 1.0 + 1e-9, "⟨P⟩ = {} out of range", e);
    }

    #[test]
    fn pinv_satisfies_first_moore_penrose_axiom(
        data in proptest::collection::vec(-1.0f64..1.0, 20),
    ) {
        let a = Mat::from_vec(5, 4, data);
        let ap = pinv(&a, None);
        let back = a.matmul(&ap).matmul(&a);
        prop_assert!(back.max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_columns(
        data in proptest::collection::vec(-1.0f64..1.0, 24),
        rhs in proptest::collection::vec(-1.0f64..1.0, 6),
    ) {
        let a = Mat::from_vec(6, 4, data);
        let x = lstsq(&a, &rhs);
        let ax = a.matvec(&x);
        let resid: Vec<f64> = ax.iter().zip(rhs.iter()).map(|(p, q)| p - q).collect();
        let grad = a.t_matvec(&resid);
        for g in grad {
            prop_assert!(g.abs() < 1e-7, "normal equations violated: {}", g);
        }
    }

    #[test]
    fn shift_grids_have_bounded_support(k in 1usize..7, r in 0usize..4) {
        let shifts = postvar::pvqnn::shifts::enumerate_shifts(k, r);
        prop_assert_eq!(shifts.len() as u128, postvar::pvqnn::shifts::shift_count(k, r));
        for s in &shifts {
            let nz = s.iter().filter(|&&v| v != 0.0).count();
            prop_assert!(nz <= r.min(k));
        }
    }

    #[test]
    fn rmse_dominates_mae(
        y in proptest::collection::vec(-2.0f64..2.0, 1..30),
    ) {
        let y_hat: Vec<f64> = y.iter().map(|v| v * 0.5 + 0.1).collect();
        let rmse = postvar::ml::rmse_loss(&y, &y_hat);
        let mae = postvar::ml::mae_loss(&y, &y_hat);
        // Paper Eq. (13): MAE ≤ RMSE.
        prop_assert!(mae <= rmse + 1e-12);
    }

    #[test]
    fn encoded_features_give_normalised_states(
        raw in proptest::collection::vec(0.0f64..std::f64::consts::TAU, 16),
    ) {
        let s = StateVector::from_circuit(&fig7_encoding(&raw));
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
        // All probabilities valid.
        for b in 0..16u64 {
            let p = s.probability(b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
    }

    #[test]
    fn identity_feature_column_is_always_one(
        raw in proptest::collection::vec(0.0f64..std::f64::consts::TAU, 16),
    ) {
        let generator = FeatureGenerator::new(
            PvStrategy::observable_construction(4, 1),
            FeatureBackend::Exact,
        );
        let row = generator.generate_one(&raw);
        prop_assert!((row[0] - 1.0).abs() < 1e-12);
        for v in &row {
            prop_assert!(v.abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn apply_compiled_matches_apply_circuit(c in fusion_circuit(4, 30)) {
        // Gate fusion reassociates the floating-point work (runs collapse
        // into one matrix product), so the contract is 1e-12 agreement,
        // not bit equality — plus preserved unitarity.
        let compiled = qsim::compile(&c);
        let direct = StateVector::from_circuit(&c);
        let fused = StateVector::from_compiled(&compiled);
        prop_assert!((fused.norm_sqr() - 1.0).abs() < 1e-9);
        for (a, b) in direct.amplitudes().iter().zip(fused.amplitudes()) {
            prop_assert!((a - b).norm() < 1e-12, "direct {} vs fused {}", a, b);
        }
    }

    #[test]
    fn batched_lanes_bit_identical_to_standalone(c in fusion_circuit(4, 24)) {
        // Batching is a layout change, not a math change: every lane must
        // reproduce the standalone simulation bit-for-bit, through both
        // the gate-by-gate and the compiled execution paths.
        let direct = StateVector::from_circuit(&c);
        let compiled = qsim::compile(&c);
        let fused = StateVector::from_compiled(&compiled);
        let lanes = 3;
        let mut batch = BatchedStateVector::zero_states(4, lanes);
        batch.apply_circuit(&c);
        let mut batch_compiled = BatchedStateVector::zero_states(4, lanes);
        batch_compiled.apply_compiled(&compiled);
        for l in 0..lanes {
            for (a, b) in batch.lane(l).amplitudes().iter().zip(direct.amplitudes()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
            for (a, b) in batch_compiled.lane(l).amplitudes().iter().zip(fused.amplitudes()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn batched_feature_rows_bit_identical_to_per_point(
        raws in proptest::collection::vec(
            proptest::collection::vec(0.0f64..std::f64::consts::TAU, 16), 1..4),
        seed in 0u64..1000,
    ) {
        // The serving invariant end to end: standalone-seeded batched rows
        // (the cache-miss path) equal one-at-a-time `generate_one` exactly,
        // even for the stochastic finite-shot backend.
        let generator = FeatureGenerator::new(
            PvStrategy::hybrid(fig8_ansatz(4), 1, 1),
            FeatureBackend::Shots { shots: 32, seed },
        );
        let refs: Vec<&[f64]> = raws.iter().map(Vec::as_slice).collect();
        let rows = generator.generate_rows_standalone(&refs);
        prop_assert_eq!(rows.len(), raws.len());
        for (x, row) in refs.iter().zip(rows.iter()) {
            let lone = generator.generate_one(x);
            prop_assert_eq!(row, &lone);
        }
    }

    #[test]
    fn expectation_many_matches_per_term(
        c in circuit(4, 16),
        paulis in proptest::collection::vec(pauli_string(4), 1..12),
    ) {
        let s = StateVector::from_circuit(&c);
        let fused = s.expectation_many(&paulis);
        prop_assert_eq!(fused.len(), paulis.len());
        for (p, &v) in paulis.iter().zip(fused.iter()) {
            let per_term = s.expectation(p);
            prop_assert!(
                (v - per_term).abs() < 1e-10,
                "{}: fused {} vs per-term {}", p, v, per_term
            );
        }
    }
}

// Thread-count determinism needs states above PARALLEL_THRESHOLD (2^16
// amplitudes → 17 qubits), so these run with fewer cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_kernels_bit_identical_across_thread_counts(c in circuit(17, 10)) {
        // Gate kernels write disjoint items and reductions use fixed
        // chunking, so 1-thread and 4-thread runs must agree bit-for-bit.
        let s1 = rayon::with_num_threads(1, || StateVector::from_circuit(&c));
        let s4 = rayon::with_num_threads(4, || StateVector::from_circuit(&c));
        for (a, b) in s1.amplitudes().iter().zip(s4.amplitudes()) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        let p = PauliString::from_masks(17, 0b1, 0b10);
        let e1 = rayon::with_num_threads(1, || s1.expectation(&p));
        let e4 = rayon::with_num_threads(4, || s1.expectation(&p));
        prop_assert_eq!(e1.to_bits(), e4.to_bits());
        let i1 = rayon::with_num_threads(1, || s1.inner(&s4));
        let i4 = rayon::with_num_threads(4, || s1.inner(&s4));
        prop_assert_eq!(i1.re.to_bits(), i4.re.to_bits());
        prop_assert_eq!(i1.im.to_bits(), i4.im.to_bits());
    }

    #[test]
    fn apply_compiled_bit_identical_across_thread_counts(c in fusion_circuit(17, 8)) {
        // The fused kernels keep the fixed chunking of the direct path,
        // so compiled execution is thread-count invariant too.
        let compiled = qsim::compile(&c);
        let s1 = rayon::with_num_threads(1, || StateVector::from_compiled(&compiled));
        let s4 = rayon::with_num_threads(4, || StateVector::from_compiled(&compiled));
        for (a, b) in s1.amplitudes().iter().zip(s4.amplitudes()) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn expectation_many_bit_identical_across_thread_counts(
        c in circuit(17, 10),
        paulis in proptest::collection::vec(pauli_string(17), 1..6),
    ) {
        let s = StateVector::from_circuit(&c);
        let v1 = rayon::with_num_threads(1, || s.expectation_many(&paulis));
        let v4 = rayon::with_num_threads(4, || s.expectation_many(&paulis));
        for (a, b) in v1.iter().zip(v4.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

// Chaos determinism: random fault schedules (outages, degraded phases,
// transient failure rates) replayed over the QPU pool must resolve every
// job exactly once — bit-for-bit identical results or the same typed
// error — under every scheduling policy and any executor thread count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn chaos_outcomes_bit_identical_across_policies_and_threads(
        schedules in proptest::collection::vec(chaos_schedule(), 2..4),
        fail_milli in 0u32..400,
        n_jobs in 1usize..10,
    ) {
        use postvar::hpcq::{
            outcome_id, CircuitJob, FaultPolicy, QpuConfig, QpuPool, RetryPolicy,
            SchedulePolicy,
        };
        let jobs: Vec<CircuitJob> = (0..n_jobs as u64)
            .map(|id| {
                let mut c = qsim::Circuit::new(4);
                for q in 0..4 {
                    c.push(Gate::Ry(q, 0.3 + 0.11 * (id as f64 + q as f64)));
                }
                c.push(Gate::Cnot { control: 0, target: 1 });
                CircuitJob::new(id, c, vec![PauliString::from_masks(4, 0b1, 0)], None)
            })
            .collect();
        let run = |policy: SchedulePolicy, threads: usize| {
            rayon::with_num_threads(threads, || {
                let configs = schedules
                    .iter()
                    .map(|f| QpuConfig {
                        fail_prob: fail_milli as f64 / 1000.0,
                        faults: f.clone(),
                        ..Default::default()
                    })
                    .collect();
                let mut pool = QpuPool::heterogeneous(configs, policy).with_fault_policy(
                    FaultPolicy {
                        retry: RetryPolicy {
                            max_attempts_total: 8,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                );
                pool.execute_batch(jobs.clone()).0
            })
        };
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::LeastLoaded,
            SchedulePolicy::WorkStealing,
        ] {
            let base = run(policy, 1);
            // Every job resolves exactly once: no lost, no duplicated.
            prop_assert_eq!(base.len(), n_jobs);
            for (i, o) in base.iter().enumerate() {
                prop_assert_eq!(outcome_id(o), i as u64);
            }
            for threads in [2usize, 4] {
                let other = run(policy, threads);
                for (a, b) in base.iter().zip(other.iter()) {
                    match (a, b) {
                        (Ok(x), Ok(y)) => {
                            prop_assert_eq!(x.device, y.device);
                            prop_assert_eq!(x.sim_completed_ns, y.sim_completed_ns);
                            for (u, v) in x.values.iter().zip(y.values.iter()) {
                                prop_assert_eq!(u.to_bits(), v.to_bits());
                            }
                        }
                        (Err(x), Err(y)) => {
                            prop_assert_eq!(x.attempts, y.attempts);
                            prop_assert_eq!(x.kind, y.kind);
                        }
                        _ => prop_assert!(
                            false,
                            "Ok/Err divergence across thread counts under {:?}",
                            policy
                        ),
                    }
                }
            }
        }
    }
}

// Weighted-fair admission: the brownout ladder's fairness invariant,
// driven with random weights and random interleaved admit/release
// sequences against a shadow occupancy model. The whole suite runs
// under CI's POSTVAR_NUM_THREADS = 1, 2, 4 matrix; the controller sits
// inside the server's queue mutex, so its decisions must be a pure
// function of the admit/release sequence regardless of thread count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn admission_is_weighted_fair_and_occupancy_exact(
        weights in proptest::collection::vec(1u32..5, 1..6),
        capacity in 8usize..64,
        high_frac_milli in 100u32..1200,
        ops in proptest::collection::vec((0usize..6, 0u8..4), 1..200),
    ) {
        use postvar::serve::{AdmissionController, BrownoutLevel, Rejected, TenantId};
        let high_water = ((capacity as u64 * high_frac_milli as u64) / 1000).max(1) as usize;
        let mut c = AdmissionController::new(capacity, high_water);
        let n = weights.len();
        for (i, &w) in weights.iter().enumerate() {
            c.set_tenant_weight(TenantId(i as u32), w);
        }
        let mut shadow = vec![0usize; n];
        let mut total = 0usize;
        for (t, action) in ops {
            let tenant = TenantId((t % n) as u32);
            let idx = t % n;
            if action == 3 {
                // Release one of this tenant's queued requests, if any.
                if shadow[idx] > 0 {
                    c.release(tenant);
                    shadow[idx] -= 1;
                    total -= 1;
                }
                continue;
            }
            let has_deadline = action != 1;
            let pre_level = c.level();
            let share = c.brownout_share(tenant);
            match c.admit(tenant, has_deadline) {
                Ok(()) => {
                    // Fairness, admit side: while shedding, only
                    // under-share tenants get in.
                    if pre_level >= BrownoutLevel::ShedOverShare {
                        prop_assert!(
                            shadow[idx] < share,
                            "over-share {tenant} admitted while shedding \
                             (depth {} ≥ share {share})", shadow[idx]
                        );
                    }
                    prop_assert!(total < capacity, "admission past the hard bound");
                    shadow[idx] += 1;
                    total += 1;
                }
                Err(Rejected::QueueFull { depth }) => {
                    prop_assert_eq!(total, capacity, "QueueFull below capacity");
                    prop_assert_eq!(depth, capacity);
                }
                Err(Rejected::TenantOverShare { tenant: who, depth, share: s }) => {
                    // Fairness, shed side: a tenant under its fair share
                    // is never shed as over-share.
                    prop_assert_eq!(who, tenant);
                    prop_assert_eq!(depth, shadow[idx]);
                    prop_assert_eq!(s, share);
                    prop_assert!(
                        shadow[idx] >= share,
                        "under-share {tenant} shed (depth {} < share {share})", shadow[idx]
                    );
                    prop_assert!(pre_level >= BrownoutLevel::ShedOverShare);
                }
                Err(Rejected::Deferred { .. }) => {
                    prop_assert!(!has_deadline, "deadline traffic deferred");
                    prop_assert_eq!(pre_level, BrownoutLevel::DeferSlack);
                    prop_assert!(shadow[idx] < share, "defer only reached under share");
                }
                Err(Rejected::Overloaded { .. }) => {
                    prop_assert_eq!(pre_level, BrownoutLevel::GlobalShed);
                }
                Err(other) => prop_assert!(false, "unexpected rejection {other:?}"),
            }
            // The controller's occupancy books must match the shadow
            // model exactly after every operation — the TOCTOU refactor's
            // whole point.
            prop_assert_eq!(c.depth(), total);
            prop_assert_eq!(c.depth_of(tenant), shadow[idx]);
        }
        for (i, &d) in shadow.iter().enumerate() {
            prop_assert_eq!(c.depth_of(TenantId(i as u32)), d);
        }
    }
}

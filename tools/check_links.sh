#!/usr/bin/env bash
# Verifies every intra-repo markdown link in the doc set:
#   - relative file links must point at files that exist
#   - anchor links (#fragment) must match a heading in the target file
# External (http/https/mailto) links are skipped — CI must not depend
# on the network. Run from anywhere; paths resolve from the repo root.
#
# Usage: tools/check_links.sh [file.md ...]   (defaults to the doc set)

set -u
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(README.md ARCHITECTURE.md ROADMAP.md CHANGES.md PAPER.md)
fi

# Lowercase a heading, drop everything but letters/digits/spaces/
# hyphens, then hyphenate spaces — GitHub's anchor slug algorithm,
# close enough for the ASCII headings this repo uses.
slugify() {
    printf '%s' "$1" |
        tr '[:upper:]' '[:lower:]' |
        sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}

# All heading slugs of a markdown file, one per line.
anchors_of() {
    local line
    while IFS= read -r line; do
        line="${line###}"
        line="${line###}"
        line="${line##\#}"
        line="${line## }"
        slugify "$line"
        echo
    done < <(grep -E '^#{1,6} ' "$1" | sed -E 's/^#{1,6} //')
}

failures=0

for file in "${files[@]}"; do
    if [ ! -f "$file" ]; then
        echo "MISSING DOC: $file"
        failures=$((failures + 1))
        continue
    fi
    dir=$(dirname "$file")
    # Extract inline link targets: ](target). Reference-style links and
    # bare URLs are not used in this doc set.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        path="${target%%#*}"
        fragment=""
        case "$target" in
        *'#'*) fragment="${target#*#}" ;;
        esac
        if [ -n "$path" ]; then
            resolved="$dir/$path"
            if [ ! -e "$resolved" ]; then
                echo "$file: broken link -> $target (no such file: $resolved)"
                failures=$((failures + 1))
                continue
            fi
            anchor_file="$resolved"
        else
            anchor_file="$file"
        fi
        if [ -n "$fragment" ]; then
            case "$anchor_file" in
            *.md) ;;
            *) continue ;; # anchors into non-markdown files: skip
            esac
            if ! anchors_of "$anchor_file" | grep -qx "$fragment"; then
                echo "$file: broken anchor -> $target (no heading slug '$fragment' in $anchor_file)"
                failures=$((failures + 1))
            fi
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//; s/ "[^"]*"$//')
done

if [ "$failures" -gt 0 ]; then
    echo "link check FAILED: $failures broken link(s)"
    exit 1
fi
echo "link check passed: all intra-repo markdown links resolve (${files[*]})"

//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this shim provides a
//! small wall-clock harness behind criterion's API shape: no statistics,
//! outlier rejection, or HTML reports — each benchmark is warmed up once
//! and timed over `sample_size` batches, reporting min/mean per
//! iteration. Good enough to (a) keep every bench target compiling under
//! `cargo bench --no-run` in CI and (b) give rough local numbers. Swap
//! the `[workspace.dependencies]` path entry for the real crate when a
//! registry is available; call sites need no changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Iterations per timed batch (tuned so a batch is measurable).
    batch: u64,
    samples: usize,
    /// Collected per-iteration durations, one per batch.
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it in batches and recording the mean
    /// duration of each batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ≥ ~1 ms or we hit a cap, so cheap routines are
        // measured over many iterations.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        self.batch = batch;
        self.per_iter.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.per_iter.push(start.elapsed() / batch as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(id: &str, bencher: &Bencher) {
    if bencher.per_iter.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let min = bencher.per_iter.iter().min().copied().unwrap_or_default();
    let total: Duration = bencher.per_iter.iter().sum();
    let mean = total / bencher.per_iter.len() as u32;
    println!(
        "{id:<48} min {:>10}   mean {:>10}   ({} samples × {} iters)",
        fmt_duration(min),
        fmt_duration(mean),
        bencher.per_iter.len(),
        bencher.batch,
    );
}

/// Identifier for a parameterised benchmark, e.g. `expectation/16`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim has no fixed
    /// measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            batch: 1,
            samples: self.samples,
            per_iter: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            batch: 1,
            samples: self.samples,
            per_iter: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    pub fn finish(self) {}
}

/// Top-level harness state.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group {name}");
        BenchmarkGroup {
            name,
            samples: self.samples,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            batch: 1,
            samples: self.samples,
            per_iter: Vec::new(),
        };
        f(&mut b);
        report(id, &b);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro. Bench
/// targets must set `harness = false` so this `main` is used.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

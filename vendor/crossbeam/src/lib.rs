//! Offline stand-in for `crossbeam`.
//!
//! The build environment has no registry access, so this shim provides
//! the one structure the scheduler uses: [`deque::Injector`], a
//! multi-producer multi-consumer FIFO with crossbeam's `Steal` result
//! protocol. Backed by `Mutex<VecDeque>` instead of a lock-free deque —
//! correct under the same contract, slower under heavy contention. Swap
//! the `[workspace.dependencies]` path entry for the real crate when a
//! registry is available; call sites need no changes.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    /// A FIFO injector queue shared by all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Pops a task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks at the moment of observation.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal};

    #[test]
    fn fifo_order() {
        let q = Injector::new();
        q.push(1);
        q.push(2);
        match q.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            other => panic!("expected Success(1), got {other:?}"),
        }
        match q.steal() {
            Steal::Success(v) => assert_eq!(v, 2),
            other => panic!("expected Success(2), got {other:?}"),
        }
        assert!(matches!(q.steal(), Steal::Empty));
    }

    #[test]
    fn concurrent_drain_loses_nothing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = Injector::new();
        for i in 0..1000 {
            q.push(i);
        }
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| loop {
                    match q.steal() {
                        Steal::Success(_) => {
                            seen.fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), 1000);
    }
}

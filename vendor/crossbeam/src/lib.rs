//! Offline stand-in for `crossbeam`.
//!
//! The build environment has no registry access, so this shim provides
//! the deque structures the schedulers use: [`deque::Injector`], a
//! multi-producer multi-consumer FIFO, and the [`deque::Worker`] /
//! [`deque::Stealer`] pair (a worker-owned deque popped LIFO by its owner
//! and stolen FIFO by other threads), all speaking crossbeam's `Steal`
//! result protocol. Backed by `Mutex<VecDeque>` instead of lock-free
//! deques — correct under the same contract, slower under heavy
//! contention. Swap the `[workspace.dependencies]` path entry for the
//! real crate when a registry is available; call sites need no changes.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    /// A FIFO injector queue shared by all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Pops a task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks at the moment of observation.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    /// The owner's handle of a work-stealing deque. The owner pushes and
    /// pops at the back (LIFO — newest task is cache-hottest); thieves
    /// steal from the front via [`Stealer`] handles (FIFO — oldest task
    /// first, the one the owner is least likely to want next).
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a deque whose owner pops in LIFO order.
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("worker deque poisoned")
                .push_back(task);
        }

        /// Pops the most recently pushed task (owner side).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("worker deque poisoned").pop_back()
        }

        /// Whether the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker deque poisoned").is_empty()
        }

        /// Number of queued tasks at the moment of observation.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("worker deque poisoned").len()
        }

        /// A handle other threads use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_lifo()
        }
    }

    /// A thief's handle onto a [`Worker`] deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the owner's deque.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
            {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker deque poisoned").is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal};

    #[test]
    fn fifo_order() {
        let q = Injector::new();
        q.push(1);
        q.push(2);
        match q.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            other => panic!("expected Success(1), got {other:?}"),
        }
        match q.steal() {
            Steal::Success(v) => assert_eq!(v, 2),
            other => panic!("expected Success(2), got {other:?}"),
        }
        assert!(matches!(q.steal(), Steal::Empty));
    }

    #[test]
    fn worker_pops_lifo_stealer_steals_fifo() {
        use super::deque::Worker;
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops newest");
        match s.steal() {
            Steal::Success(v) => assert_eq!(v, 1, "thief steals oldest"),
            other => panic!("expected Success(1), got {other:?}"),
        }
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some(2));
        assert!(w.is_empty() && s.is_empty());
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn concurrent_worker_drain_loses_nothing() {
        use super::deque::Worker;
        use std::sync::atomic::{AtomicUsize, Ordering};
        let w = Worker::new_lifo();
        for i in 0..500 {
            w.push(i);
        }
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let s = w.stealer();
                let seen = &seen;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(_) => {
                            seen.fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
            while w.pop().is_some() {
                seen.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn concurrent_drain_loses_nothing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = Injector::new();
        for i in 0..1000 {
            q.push(i);
        }
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| loop {
                    match q.steal() {
                        Steal::Success(_) => {
                            seen.fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), 1000);
    }
}

//! Offline stand-in for `crossbeam`.
//!
//! The build environment has no registry access, so this shim provides
//! the deque structures the schedulers use: [`deque::Injector`], a
//! multi-producer multi-consumer FIFO, and the [`deque::Worker`] /
//! [`deque::Stealer`] pair — a **lock-free Chase-Lev deque** (single
//! owner pushing/popping LIFO at the bottom, any number of thieves
//! stealing FIFO from the top), all speaking crossbeam's `Steal` result
//! protocol. Thieves can also move half a victim's queue in one
//! operation ([`deque::Stealer::steal_batch_and_pop`]), which is what
//! keeps fine-grained task splitting cheap under contention: one steal
//! round-trip amortizes over many tasks instead of paying one per task.
//! Swap the `[workspace.dependencies]` path entry for the real crate
//! when a registry is available; call sites need no changes.

pub mod deque {
    //! Work-stealing deques.
    //!
    //! [`Worker`]/[`Stealer`] implement the Chase-Lev dynamic circular
    //! work-stealing deque (Chase & Lev, SPAA'05, with the memory-order
    //! corrections of Lê et al., PPoPP'13):
    //!
    //! * `bottom` is owned by the single [`Worker`] handle — `push`
    //!   writes there and bumps it, `pop` decrements it and resolves the
    //!   one-element race against thieves with a CAS on `top`.
    //! * `top` only ever increases; every steal claims the element at
    //!   `top` with a `compare_exchange`, so a lost race costs a
    //!   [`Steal::Retry`] spin instead of a blocked mutex.
    //! * The circular buffer grows geometrically when full. Retired
    //!   buffers are kept alive until the deque drops (thieves may still
    //!   hold the old pointer mid-steal), so no epoch/hazard machinery is
    //!   needed; the retired chain totals less than one current buffer.
    //!
    //! [`Stealer::steal_batch_and_pop`] claims up to half the victim's
    //! queue (capped at [`MAX_BATCH`]), one CAS per task, re-checking
    //! `bottom` between claims so a concurrently popping owner can never
    //! be double-served; the surplus lands in the thief's own deque.
    //!
    //! The [`Injector`] stays a mutex-backed FIFO: it is the cold global
    //! submission queue, and its batch drain locks once per ~half-queue
    //! rather than once per task.

    use std::cell::Cell;
    use std::collections::VecDeque;
    use std::marker::PhantomData;
    use std::mem;
    use std::mem::MaybeUninit;
    use std::ptr;
    use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    /// Most tasks one batch steal may claim (including the returned one).
    /// Matches crossbeam's bound: big enough to amortize the steal
    /// round-trip, small enough that a thief cannot hoard a whole queue.
    pub const MAX_BATCH: usize = 32;

    /// Initial circular-buffer capacity (power of two).
    const MIN_CAP: usize = 64;

    /// A FIFO injector queue shared by all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Pops a task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Pops one task and moves up to half the rest of the queue
        /// (capped at [`MAX_BATCH`] total) into `dest` under a single
        /// lock acquisition. `dest` must be the calling thread's own
        /// worker deque.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().expect("injector poisoned");
            let Some(first) = queue.pop_front() else {
                return Steal::Empty;
            };
            let extra = queue.len().div_ceil(2).min(MAX_BATCH - 1);
            for _ in 0..extra {
                match queue.pop_front() {
                    Some(task) => dest.push(task),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks at the moment of observation.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    /// A growable circular array indexed by the deque's unbounded
    /// `top`/`bottom` counters (wrapped modulo the power-of-two capacity).
    /// Slots are `MaybeUninit` raw storage: reads and writes are plain
    /// byte copies that never materialize a `T`, and ownership is tracked
    /// entirely by the `top`/`bottom` indices — a thief only
    /// `assume_init`s its copy *after* winning the CAS on `top`, so a
    /// racy speculative read of a slot the owner is recycling is a
    /// harmless dead byte copy, never an invalid value.
    struct Buffer<T> {
        ptr: *mut MaybeUninit<T>,
        /// Power-of-two logical capacity used for index masking.
        cap: usize,
        /// The allocation's true capacity — `Vec::with_capacity` may
        /// round up past `cap`, and `dealloc` must hand back exactly
        /// what was allocated.
        alloc_cap: usize,
    }

    impl<T> Buffer<T> {
        fn alloc(cap: usize) -> Buffer<T> {
            debug_assert!(cap.is_power_of_two());
            let mut v: Vec<MaybeUninit<T>> = Vec::with_capacity(cap);
            let alloc_cap = v.capacity();
            let ptr = v.as_mut_ptr();
            mem::forget(v);
            Buffer {
                ptr,
                cap,
                alloc_cap,
            }
        }

        /// Frees the allocation without dropping any element.
        unsafe fn dealloc(ptr: *mut Buffer<T>) {
            let buf = Box::from_raw(ptr);
            drop(Vec::from_raw_parts(buf.ptr, 0, buf.alloc_cap));
        }

        unsafe fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
            self.ptr.offset(index & (self.cap as isize - 1))
        }

        unsafe fn write(&self, index: isize, task: MaybeUninit<T>) {
            ptr::write(self.slot(index), task)
        }

        unsafe fn read(&self, index: isize) -> MaybeUninit<T> {
            ptr::read(self.slot(index))
        }
    }

    /// State shared by one [`Worker`] and its [`Stealer`]s.
    struct Inner<T> {
        /// Steal end. Only ever incremented, always by CAS.
        top: AtomicIsize,
        /// Owner end. Written only by the owner.
        bottom: AtomicIsize,
        /// Current circular buffer.
        buffer: AtomicPtr<Buffer<T>>,
        /// Buffers replaced by growth, freed when the deque drops — a
        /// thief may still read from an old buffer mid-steal, and keeping
        /// retirees alive (a geometric series, < one current buffer in
        /// total) avoids epoch-based reclamation entirely.
        retired: Mutex<Vec<*mut Buffer<T>>>,
    }

    unsafe impl<T: Send> Send for Inner<T> {}
    unsafe impl<T: Send> Sync for Inner<T> {}

    impl<T> Inner<T> {
        /// Replaces the buffer with one of twice the capacity, copying
        /// the live range `[top, bottom)`. Owner-only.
        unsafe fn grow(&self, top: isize, bottom: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
            let new = Box::into_raw(Box::new(Buffer::<T>::alloc((*old).cap * 2)));
            let mut i = top;
            while i != bottom {
                (*new).write(i, (*old).read(i));
                i = i.wrapping_add(1);
            }
            self.buffer.store(new, Ordering::Release);
            self.retired.lock().expect("deque poisoned").push(old);
            new
        }
    }

    impl<T> Drop for Inner<T> {
        fn drop(&mut self) {
            // Sole remaining handle: plain loads are fine.
            let top = self.top.load(Ordering::Relaxed);
            let bottom = self.bottom.load(Ordering::Relaxed);
            let buf = self.buffer.load(Ordering::Relaxed);
            unsafe {
                let mut i = top;
                while i != bottom {
                    drop((*buf).read(i).assume_init());
                    i = i.wrapping_add(1);
                }
                Buffer::dealloc(buf);
                for old in self.retired.lock().expect("deque poisoned").drain(..) {
                    Buffer::dealloc(old);
                }
            }
        }
    }

    /// The owner's handle of a work-stealing deque. The owner pushes and
    /// pops at the bottom (LIFO — newest task is cache-hottest); thieves
    /// steal from the top via [`Stealer`] handles (FIFO — oldest task
    /// first, the one the owner is least likely to want next). Exactly
    /// one thread may use a given `Worker` (it is `Send` but not `Sync`).
    pub struct Worker<T> {
        inner: Arc<Inner<T>>,
        /// Owner operations are single-threaded; forbid `&Worker` from
        /// crossing threads.
        _not_sync: PhantomData<Cell<()>>,
    }

    unsafe impl<T: Send> Send for Worker<T> {}

    impl<T> Worker<T> {
        /// Creates a deque whose owner pops in LIFO order.
        pub fn new_lifo() -> Self {
            let buffer = Box::into_raw(Box::new(Buffer::<T>::alloc(MIN_CAP)));
            Worker {
                inner: Arc::new(Inner {
                    top: AtomicIsize::new(0),
                    bottom: AtomicIsize::new(0),
                    buffer: AtomicPtr::new(buffer),
                    retired: Mutex::new(Vec::new()),
                }),
                _not_sync: PhantomData,
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            let bottom = self.inner.bottom.load(Ordering::Relaxed);
            let top = self.inner.top.load(Ordering::Acquire);
            let mut buf = self.inner.buffer.load(Ordering::Relaxed);
            unsafe {
                if bottom.wrapping_sub(top) >= (*buf).cap as isize {
                    buf = self.inner.grow(top, bottom, buf);
                }
                (*buf).write(bottom, MaybeUninit::new(task));
            }
            // Publish the slot before publishing the new bottom.
            self.inner
                .bottom
                .store(bottom.wrapping_add(1), Ordering::Release);
        }

        /// Pops the most recently pushed task (owner side). The
        /// last-element race against thieves is resolved by a CAS on
        /// `top`; losing it returns `None`.
        pub fn pop(&self) -> Option<T> {
            let bottom = self.inner.bottom.load(Ordering::Relaxed).wrapping_sub(1);
            let buf = self.inner.buffer.load(Ordering::Relaxed);
            self.inner.bottom.store(bottom, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let top = self.inner.top.load(Ordering::Relaxed);
            let len = bottom.wrapping_sub(top);
            if len < 0 {
                // Was empty: restore bottom.
                self.inner
                    .bottom
                    .store(bottom.wrapping_add(1), Ordering::Relaxed);
                return None;
            }
            // A byte copy only — `assume_init` waits until ownership of
            // the slot is certain.
            let task = unsafe { (*buf).read(bottom) };
            if len == 0 {
                // Last element: win it from the thieves or concede it.
                let won = self
                    .inner
                    .top
                    .compare_exchange(
                        top,
                        top.wrapping_add(1),
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    )
                    .is_ok();
                self.inner
                    .bottom
                    .store(bottom.wrapping_add(1), Ordering::Relaxed);
                // A lost race discards the dead copy — `MaybeUninit`
                // never drops, so nothing to forget.
                if won {
                    Some(unsafe { task.assume_init() })
                } else {
                    None
                }
            } else {
                Some(unsafe { task.assume_init() })
            }
        }

        /// Whether the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Number of queued tasks at the moment of observation.
        pub fn len(&self) -> usize {
            let bottom = self.inner.bottom.load(Ordering::Relaxed);
            let top = self.inner.top.load(Ordering::Relaxed);
            bottom.wrapping_sub(top).max(0) as usize
        }

        /// A handle other threads use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_lifo()
        }
    }

    impl<T> std::fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Worker").field("len", &self.len()).finish()
        }
    }

    /// A thief's handle onto a [`Worker`] deque.
    pub struct Stealer<T> {
        inner: Arc<Inner<T>>,
    }

    unsafe impl<T: Send> Send for Stealer<T> {}
    unsafe impl<T: Send> Sync for Stealer<T> {}

    impl<T> Stealer<T> {
        /// Steals the oldest task from the owner's deque. [`Steal::Retry`]
        /// means the CAS on `top` lost a race with the owner or another
        /// thief — spin and retry instead of blocking.
        pub fn steal(&self) -> Steal<T> {
            let top = self.inner.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let bottom = self.inner.bottom.load(Ordering::Acquire);
            if bottom.wrapping_sub(top) <= 0 {
                return Steal::Empty;
            }
            let buf = self.inner.buffer.load(Ordering::Acquire);
            // Speculative byte copy; only a winning CAS may treat it as
            // an initialized `T` (a losing copy is dead bytes, discarded).
            let task = unsafe { (*buf).read(top) };
            match self.inner.top.compare_exchange(
                top,
                top.wrapping_add(1),
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => Steal::Success(unsafe { task.assume_init() }),
                Err(_) => Steal::Retry,
            }
        }

        /// Steals up to half the victim's queue (capped at [`MAX_BATCH`]
        /// tasks): returns the oldest stolen task and pushes the rest
        /// onto `dest`, the calling thread's own deque. Claims one CAS
        /// per task, re-reading `bottom` between claims so a concurrently
        /// popping owner is never double-served; a partial batch is still
        /// [`Steal::Success`].
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut top = self.inner.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let bottom = self.inner.bottom.load(Ordering::Acquire);
            let len = bottom.wrapping_sub(top);
            if len <= 0 {
                return Steal::Empty;
            }
            let limit = (((len + 1) / 2) as usize).min(MAX_BATCH);
            // The buffer pointer is read once: growth never mutates the
            // observed live range `[top, bottom)` of the old buffer, so
            // these slots stay valid for the whole batch.
            let buf = self.inner.buffer.load(Ordering::Acquire);
            let mut first: Option<T> = None;
            for taken in 0..limit {
                if taken > 0 {
                    // Re-check that the owner hasn't popped the range
                    // down to (or past) the next claim.
                    fence(Ordering::SeqCst);
                    let bottom = self.inner.bottom.load(Ordering::Acquire);
                    if bottom.wrapping_sub(top) <= 0 {
                        break;
                    }
                }
                let task = unsafe { (*buf).read(top) };
                match self.inner.top.compare_exchange(
                    top,
                    top.wrapping_add(1),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let task = unsafe { task.assume_init() };
                        match first {
                            None => first = Some(task),
                            Some(_) => dest.push(task),
                        }
                        top = top.wrapping_add(1);
                    }
                    Err(_) => break,
                }
            }
            match first {
                Some(task) => Steal::Success(task),
                None => Steal::Retry,
            }
        }

        /// Whether the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            let top = self.inner.top.load(Ordering::Relaxed);
            let bottom = self.inner.bottom.load(Ordering::Relaxed);
            bottom.wrapping_sub(top) <= 0
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> std::fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Stealer").finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order() {
        let q = Injector::new();
        q.push(1);
        q.push(2);
        match q.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            other => panic!("expected Success(1), got {other:?}"),
        }
        match q.steal() {
            Steal::Success(v) => assert_eq!(v, 2),
            other => panic!("expected Success(2), got {other:?}"),
        }
        assert!(matches!(q.steal(), Steal::Empty));
    }

    #[test]
    fn worker_pops_lifo_stealer_steals_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops newest");
        match s.steal() {
            Steal::Success(v) => assert_eq!(v, 1, "thief steals oldest"),
            other => panic!("expected Success(1), got {other:?}"),
        }
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some(2));
        assert!(w.is_empty() && s.is_empty());
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn buffer_grows_past_initial_capacity() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        // Far beyond MIN_CAP, with interleaved pops to move the indices.
        for round in 0..3 {
            for i in 0..1_000 {
                w.push(round * 1_000 + i);
            }
            for _ in 0..500 {
                assert!(w.pop().is_some());
            }
        }
        let mut seen = 0;
        while w.pop().is_some() {
            seen += 1;
        }
        loop {
            match s.steal() {
                Steal::Success(_) => seen += 1,
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        assert_eq!(seen, 1_500);
    }

    #[test]
    fn batch_steal_moves_surplus_into_dest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        for i in 0..10 {
            w.push(i);
        }
        let mine = Worker::new_lifo();
        match s.steal_batch_and_pop(&mine) {
            Steal::Success(v) => assert_eq!(v, 0, "batch returns the oldest"),
            other => panic!("expected Success(0), got {other:?}"),
        }
        // Half of 10 rounded up = 5 stolen: one returned, four in `mine`.
        assert_eq!(mine.len(), 4);
        assert_eq!(w.len(), 5);
        let mut got: Vec<i32> = Vec::new();
        while let Some(v) = mine.pop() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn batch_steal_empty_and_single() {
        let w: Worker<u8> = Worker::new_lifo();
        let s = w.stealer();
        let mine = Worker::new_lifo();
        assert!(matches!(s.steal_batch_and_pop(&mine), Steal::Empty));
        w.push(7);
        match s.steal_batch_and_pop(&mine) {
            Steal::Success(v) => assert_eq!(v, 7),
            other => panic!("expected Success(7), got {other:?}"),
        }
        assert!(mine.is_empty() && w.is_empty());
    }

    #[test]
    fn drop_releases_undrained_elements() {
        // Boxes left in the deque (and in retired grow buffers) must be
        // dropped exactly once — Miri/leak-check would flag mistakes.
        let w: Worker<Box<usize>> = Worker::new_lifo();
        for i in 0..300 {
            w.push(Box::new(i));
        }
        for _ in 0..100 {
            assert!(w.pop().is_some());
        }
        drop(w);
    }

    #[test]
    fn concurrent_worker_drain_loses_nothing() {
        let w = Worker::new_lifo();
        for i in 0..500 {
            w.push(i);
        }
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let s = w.stealer();
                let seen = &seen;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(_) => {
                            seen.fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
            while w.pop().is_some() {
                seen.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn concurrent_drain_loses_nothing() {
        let q = Injector::new();
        for i in 0..1000 {
            q.push(i);
        }
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| loop {
                    match q.steal() {
                        Steal::Success(_) => {
                            seen.fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn injector_batch_drain_loses_nothing() {
        let q = Injector::new();
        for i in 0..1_000u64 {
            q.push(i);
        }
        let total = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (total, sum, q) = (&total, &sum, &q);
                scope.spawn(move || {
                    let mine = Worker::new_lifo();
                    loop {
                        match q.steal_batch_and_pop(&mine) {
                            Steal::Success(v) => {
                                total.fetch_add(1, Ordering::SeqCst);
                                sum.fetch_add(v as usize, Ordering::SeqCst);
                                while let Some(v) = mine.pop() {
                                    total.fetch_add(1, Ordering::SeqCst);
                                    sum.fetch_add(v as usize, Ordering::SeqCst);
                                }
                            }
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 1_000);
        assert_eq!(sum.load(Ordering::SeqCst), 499_500);
    }

    /// The hammer test the thread-matrix CI job runs: one producing owner
    /// interleaving pushes and pops with several batch-stealing thieves,
    /// with a global exactly-once checksum over everything drained.
    #[test]
    fn stress_push_pop_steal_batch_checksum() {
        const ITEMS: usize = 40_000;
        const THIEVES: usize = 4;
        let w = Worker::new_lifo();
        let taken = AtomicUsize::new(0);
        let checksum = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let expected_sum: usize = (0..ITEMS).sum();
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                let s = w.stealer();
                let (taken, checksum, done) = (&taken, &checksum, &done);
                scope.spawn(move || {
                    let mine = Worker::new_lifo();
                    loop {
                        match s.steal_batch_and_pop(&mine) {
                            Steal::Success(v) => {
                                taken.fetch_add(1, Ordering::SeqCst);
                                checksum.fetch_add(v, Ordering::SeqCst);
                                while let Some(v) = mine.pop() {
                                    taken.fetch_add(1, Ordering::SeqCst);
                                    checksum.fetch_add(v, Ordering::SeqCst);
                                }
                            }
                            Steal::Empty => {
                                if done.load(Ordering::SeqCst) == 1 {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                            Steal::Retry => std::hint::spin_loop(),
                        }
                    }
                });
            }
            // Owner: push in bursts, pop some back — the LIFO end churns
            // while thieves chew on the FIFO end.
            for burst in 0..(ITEMS / 100) {
                for i in 0..100 {
                    w.push(burst * 100 + i);
                }
                for _ in 0..30 {
                    if let Some(v) = w.pop() {
                        taken.fetch_add(1, Ordering::SeqCst);
                        checksum.fetch_add(v, Ordering::SeqCst);
                    }
                }
            }
            while let Some(v) = w.pop() {
                taken.fetch_add(1, Ordering::SeqCst);
                checksum.fetch_add(v, Ordering::SeqCst);
            }
            done.store(1, Ordering::SeqCst);
        });
        // Thieves may have drained tasks the owner's final loop missed;
        // drain anything they left in limbo (they exited on Empty+done).
        while let Some(v) = w.pop() {
            taken.fetch_add(1, Ordering::SeqCst);
            checksum.fetch_add(v, Ordering::SeqCst);
        }
        assert_eq!(
            taken.load(Ordering::SeqCst),
            ITEMS,
            "every task exactly once"
        );
        assert_eq!(checksum.load(Ordering::SeqCst), expected_sum);
    }
}

//! Offline stand-in for `num-complex`.
//!
//! The build environment has no registry access, so the workspace vendors
//! a `Complex<T>` carrying exactly the surface the simulator and Pauli
//! algebra use: construction, `norm`/`norm_sqr`, `conj`, `scale`, `exp`,
//! `arg`, the ring operators (including mixed `f64` forms), and `Sum`.
//! Swap the `[workspace.dependencies]` path entry for the real crate when
//! a registry is available; call sites need no changes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + im·i`.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

/// Double-precision complex, the workspace's amplitude type.
pub type Complex64 = Complex<f64>;

impl<T> Complex<T> {
    #[inline]
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }
}

impl Complex<f64> {
    /// The imaginary unit.
    pub const I: Self = Complex { re: 0.0, im: 1.0 };
    pub const ZERO: Self = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Self = Complex { re: 1.0, im: 0.0 };

    /// `|z|²` — cheaper than [`norm`](Self::norm) when only comparing.
    #[inline]
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// `|z|`.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(&self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(&self, t: f64) -> Self {
        Complex::new(self.re * t, self.im * t)
    }

    /// Divides by a real scalar.
    #[inline]
    pub fn unscale(&self, t: f64) -> Self {
        Complex::new(self.re / t, self.im / t)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `e^z = e^re · (cos im + i sin im)`.
    #[inline]
    pub fn exp(&self) -> Self {
        let r = self.re.exp();
        Complex::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Builds `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn inv(&self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Integer power by repeated squaring (negative via [`inv`](Self::inv)).
    pub fn powi(&self, mut n: i32) -> Self {
        let mut base = if n < 0 { self.inv() } else { *self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }
}

impl fmt::Debug for Complex<f64> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl fmt::Display for Complex<f64> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl Add for Complex<f64> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex<f64> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex<f64> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex<f64> {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z·w⁻¹
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex<f64> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex<f64> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex<f64> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex<f64> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex<f64> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.unscale(rhs)
    }
}

impl Mul<f64> for &Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn mul(self, rhs: f64) -> Complex<f64> {
        self.scale(rhs)
    }
}

impl Div<f64> for &Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn div(self, rhs: f64) -> Complex<f64> {
        self.unscale(rhs)
    }
}

impl Mul<&Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn mul(self, rhs: &Complex<f64>) -> Complex<f64> {
        rhs.scale(self)
    }
}

impl Mul<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn mul(self, rhs: Complex<f64>) -> Complex<f64> {
        rhs.scale(self)
    }
}

macro_rules! forward_ref_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<&Complex<f64>> for Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: &Complex<f64>) -> Complex<f64> {
                $trait::$method(self, *rhs)
            }
        }
        impl $trait<Complex<f64>> for &Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: Complex<f64>) -> Complex<f64> {
                $trait::$method(*self, rhs)
            }
        }
        impl $trait<&Complex<f64>> for &Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: &Complex<f64>) -> Complex<f64> {
                $trait::$method(*self, *rhs)
            }
        }
    };
}

forward_ref_binop!(Add, add);
forward_ref_binop!(Sub, sub);
forward_ref_binop!(Mul, mul);
forward_ref_binop!(Div, div);

impl Neg for &Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn neg(self) -> Complex<f64> {
        -*self
    }
}

impl AddAssign for Complex<f64> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl AddAssign<&Complex<f64>> for Complex<f64> {
    #[inline]
    fn add_assign(&mut self, rhs: &Complex<f64>) {
        *self = *self + *rhs;
    }
}

impl SubAssign<&Complex<f64>> for Complex<f64> {
    #[inline]
    fn sub_assign(&mut self, rhs: &Complex<f64>) {
        *self = *self - *rhs;
    }
}

impl SubAssign for Complex<f64> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex<f64> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex<f64> {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl DivAssign<f64> for Complex<f64> {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = self.unscale(rhs);
    }
}

impl Sum for Complex<f64> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex<f64>> for Complex<f64> {
    fn sum<I: Iterator<Item = &'a Complex<f64>>>(iter: I) -> Self {
        iter.fold(Complex::ZERO, |a, b| a + *b)
    }
}

impl From<f64> for Complex<f64> {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn field_axioms_spot_checks() {
        let z = Complex64::new(1.5, -2.0);
        let w = Complex64::new(-0.25, 3.0);
        assert!(close(z * w, w * z));
        assert!(close(z * z.inv(), Complex64::ONE));
        assert!(close((z / w) * w, z));
    }

    #[test]
    fn norm_and_conj() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.norm() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
        assert!(close(z * z.conj(), Complex64::new(25.0, 0.0)));
    }

    #[test]
    fn exp_and_polar() {
        let th = 0.7;
        let z = Complex64::new(0.0, th).exp();
        assert!(close(z, Complex64::from_polar(1.0, th)));
        assert!((z.arg() - th).abs() < 1e-12);
    }

    #[test]
    fn powi_matches_repeated_mul() {
        let i = Complex64::I;
        assert!(close(i.powi(2), -Complex64::ONE));
        assert!(close(i.powi(4), Complex64::ONE));
        assert!(close(i.powi(-1), -i));
    }

    #[test]
    fn sum_over_iterator() {
        let v = [Complex64::new(1.0, 1.0); 4];
        let s: Complex64 = v.iter().sum();
        assert!(close(s, Complex64::new(4.0, 4.0)));
    }
}

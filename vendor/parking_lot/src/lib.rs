//! Offline stand-in for `parking_lot`.
//!
//! Wraps std's poisoning locks behind parking_lot's non-poisoning API
//! shape (`lock()` returns the guard directly; a poisoned lock panics,
//! which matches how this workspace treats poisoning anyway). Swap the
//! `[workspace.dependencies]` path entry for the real crate when a
//! registry is available; call sites need no changes.

use std::sync;

/// A mutual-exclusion lock whose `lock` does not return a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("mutex poisoned")
    }
}

/// A reader-writer lock whose `read`/`write` do not return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}

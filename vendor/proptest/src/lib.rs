//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this shim implements
//! the slice of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`], the [`proptest!`] macro (with
//! `#![proptest_config]`), and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate: inputs are drawn from a fixed-seed
//! RNG (fully deterministic, no persistence file) and failures do **not
//! shrink** — the panic message reports the case number instead of a
//! minimal counterexample. Swap the `[workspace.dependencies]` path entry
//! for the real crate when a registry is available; call sites need no
//! changes.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A fixed value used as a strategy (proptest's `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a half-open
    /// range of sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len)` — `len` may be a `usize`
    /// or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-test RNG: same inputs every run, seeded from the
    /// test name so sibling tests draw independent streams.
    pub fn new_rng(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property holds for the current generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that draws `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::new_rng(stringify!($name));
                for case in 0..config.cases {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (no shrinking in offline stand-in)",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::new_rng("ranges_and_maps");
        let doubled = (0..10usize).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::new_rng("vec_strategy");
        let s = collection::vec(-1.0f64..1.0, 3..7);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
        let exact = collection::vec(0..5u8, 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_runs(x in 0..100u64, y in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_work((a, b) in (0..3usize, 0..=2u32)) {
            prop_assert!(a < 3);
            prop_assert!(b <= 2);
        }
    }
}

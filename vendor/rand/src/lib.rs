//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand`'s API it actually uses: [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), [`SeedableRng::seed_from_u64`],
//! and the [`Rng`]/[`RngExt`] method surface (`random`, `random_range`).
//! Swap the `[workspace.dependencies]` path entry for the real crate when
//! a registry is available; call sites need no changes.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from a range, e.g. `0..3` or `0..=i`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: Rng> RngExt for R {}

/// Types samplable from their "standard" distribution.
pub trait Random: Sized {
    fn random<R: Rng>(rng: &mut R) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u8 {
    #[inline]
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for usize {
    #[inline]
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for i64 {
    #[inline]
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for i32 {
    #[inline]
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Random for bool {
    #[inline]
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that support uniform sampling.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (unbiased).
#[inline]
fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

// The span must be computed in 64-bit arithmetic: subtracting in the
// narrow type and then casting sign-extends any wrapped value (e.g.
// `-100i8..100` wraps to -56i8 → huge u64), so widen *before*
// subtracting. `$w` is the width-64 type of matching signedness; for
// signed types `(end as i64) - (start as i64)` wraps only for spans
// ≥ 2^63, where the i64→u64 cast still yields the span mod 2^64,
// which is exact because every span fits in 64 bits.
macro_rules! impl_int_range {
    ($($t:ty => $w:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $w).wrapping_sub(self.start as $w) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $w).wrapping_sub(lo as $w) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + f32::random(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — fast, high-quality, and deterministic across
    /// platforms. Not cryptographically secure (neither is the workload).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for i in 1usize..50 {
            let v = rng.random_range(0..=i);
            assert!(v <= i);
            let w = rng.random_range(0..3);
            assert!((0..3).contains(&w));
        }
        for _ in 0..1000 {
            let x = rng.random_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&x));
        }
    }

    #[test]
    fn signed_ranges_stay_in_bounds() {
        // Regression: spans wider than the narrow type must not
        // sign-extend (e.g. -100i8..100 has span 200 > i8::MAX).
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            let v: i8 = rng.random_range(-100i8..100);
            assert!((-100..100).contains(&v), "out of range: {v}");
            let w: i32 = rng.random_range(-2_000_000_000i32..=2_000_000_000);
            assert!((-2_000_000_000..=2_000_000_000).contains(&w));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            match rng.random_range(0..=1usize) {
                0 => lo_seen = true,
                _ => hi_seen = true,
            }
        }
        assert!(lo_seen && hi_seen);
    }
}

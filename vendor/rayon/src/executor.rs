//! The persistent work-stealing executor behind every parallel operation.
//!
//! One process-wide pool, built lazily on first use: `N − 1` background
//! worker threads (`N` = [`crate::current_num_threads`]'s default
//! resolution at startup), each owning a [`Worker`] deque popped LIFO and
//! stolen FIFO, plus a global FIFO [`Injector`] that external threads
//! submit through. Idle workers park on a condvar guarded by a sleepers
//! counter — `submit` re-checks the counter under the same lock, so a
//! wakeup can never be lost between "queue observed empty" and "parked".
//!
//! The public entry point is [`scope`]: a structured-concurrency region
//! whose [`Scope::spawn`]ed closures may borrow from the enclosing stack
//! frame. The scope owner *helps* — while its tasks are outstanding it
//! pops and runs queued work (its own tasks first, then anything else) —
//! so callers never idle-block and nested scopes on worker threads cannot
//! deadlock: every thread waiting on a scope is also draining the queues.
//!
//! Panics inside a spawned task are caught on the worker, stashed in the
//! scope, and re-thrown from `scope()` on the owner's thread — the worker
//! itself survives, so a panicking task never poisons the pool.
//!
//! Safety: `Scope::spawn` erases the closure's `'scope` lifetime to park
//! it in the `'static` worker queues (the same trick real rayon uses).
//! This is sound because `scope()` does not return until the task count
//! reaches zero, so every borrow the closure captured outlives its
//! execution. This module is the only unsafe code in the workspace.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A unit of queued work. Always a wrapper built by [`Scope::spawn`], so
/// executing one can never unwind into the worker loop.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// The local deque of the current pool worker (`None` on external
    /// threads); submissions from a worker go here instead of the
    /// injector, and are popped LIFO while still cache-hot.
    static LOCAL: RefCell<Option<Worker<Task>>> = const { RefCell::new(None) };
    /// This worker's index into `Executor::stealers` (skipped when
    /// stealing).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Task-execution nesting depth on this thread; the live-thread gauge
    /// below counts threads, not stack frames.
    static EXEC_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The process-wide pool.
pub(crate) struct Executor {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    /// Count of parked workers, guarded with [`Self::wake`].
    sleepers: Mutex<usize>,
    wake: Condvar,
    /// Threads currently executing pool tasks (workers + helping callers).
    live: AtomicUsize,
    /// High-water mark of [`Self::live`] — the oversubscription gauge the
    /// hpcq regression tests read via [`crate::max_live_workers`].
    max_live: AtomicUsize,
}

/// The executor, starting its worker threads on first use.
pub(crate) fn global() -> &'static Executor {
    static EXEC: OnceLock<&'static Executor> = OnceLock::new();
    EXEC.get_or_init(|| {
        let workers = crate::default_threads().saturating_sub(1);
        let queues: Vec<Worker<Task>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let exec: &'static Executor = Box::leak(Box::new(Executor {
            injector: Injector::new(),
            stealers: queues.iter().map(Worker::stealer).collect(),
            sleepers: Mutex::new(0),
            wake: Condvar::new(),
            live: AtomicUsize::new(0),
            max_live: AtomicUsize::new(0),
        }));
        for (index, queue) in queues.into_iter().enumerate() {
            std::thread::Builder::new()
                .name(format!("postvar-worker-{index}"))
                .spawn(move || exec.worker_main(index, queue))
                .expect("failed to spawn pool worker");
        }
        exec
    })
}

impl Executor {
    /// Queues a task: onto the calling worker's own deque when the caller
    /// is a pool worker, else onto the global injector; then wakes a
    /// parked worker if any.
    fn submit(&self, task: Task) {
        let overflow = LOCAL.with(|l| match l.borrow().as_ref() {
            Some(worker) => {
                worker.push(task);
                None
            }
            None => Some(task),
        });
        if let Some(task) = overflow {
            self.injector.push(task);
        }
        let sleepers = self.sleepers.lock().expect("executor lock poisoned");
        if *sleepers > 0 {
            self.wake.notify_one();
        }
    }

    /// Finds a task: own deque (LIFO) → injector (FIFO) → steal from
    /// sibling workers, round-robin from after the caller's own slot.
    fn find_task(&self) -> Option<Task> {
        if let Some(task) = LOCAL.with(|l| l.borrow().as_ref().and_then(Worker::pop)) {
            return Some(task);
        }
        loop {
            match self.injector.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        let n = self.stealers.len();
        let own = WORKER_INDEX.with(Cell::get);
        let start = own.map_or(0, |i| i + 1);
        for k in 0..n {
            let i = (start + k) % n;
            if own == Some(i) {
                continue;
            }
            loop {
                match self.stealers[i].steal() {
                    Steal::Success(task) => return Some(task),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    /// Runs one task, maintaining the live-thread gauge (outermost frame
    /// only — helping while waiting must not double-count a thread).
    fn run_task(&self, task: Task) {
        let depth = EXEC_DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        if depth == 0 {
            let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
            self.max_live.fetch_max(live, Ordering::Relaxed);
        }
        task();
        EXEC_DEPTH.with(|d| d.set(d.get() - 1));
        if depth == 0 {
            self.live.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Whether any queue holds a task (checked under the sleep lock before
    /// parking, closing the submit/park race).
    fn has_visible_work(&self) -> bool {
        !self.injector.is_empty() || self.stealers.iter().any(|s| !s.is_empty())
    }

    /// A background worker's whole life: run tasks; park when idle.
    fn worker_main(&'static self, index: usize, queue: Worker<Task>) {
        LOCAL.with(|l| *l.borrow_mut() = Some(queue));
        WORKER_INDEX.with(|w| w.set(Some(index)));
        loop {
            if let Some(task) = self.find_task() {
                self.run_task(task);
                continue;
            }
            let mut sleepers = self.sleepers.lock().expect("executor lock poisoned");
            if self.has_visible_work() {
                continue;
            }
            *sleepers += 1;
            // Untimed wait is safe: `submit` pushes *before* taking this
            // lock and notifies whenever `sleepers > 0`, and we re-check
            // the queues under the lock above — a wakeup cannot be lost,
            // and an idle pool costs zero CPU.
            let mut guard = self.wake.wait(sleepers).expect("executor lock poisoned");
            *guard -= 1;
        }
    }

    /// High-water mark of threads concurrently executing pool tasks.
    pub(crate) fn max_live(&self) -> usize {
        self.max_live.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live count.
    pub(crate) fn reset_max_live(&self) {
        self.max_live
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Shared bookkeeping of one [`scope`] call.
struct ScopeData {
    /// Outstanding references: one per unfinished spawned task, plus one
    /// held by the scope body itself.
    pending: AtomicUsize,
    /// First panic payload captured from a spawned task.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    done_lock: Mutex<()>,
    done: Condvar,
}

impl ScopeData {
    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Takes the lock so a waiter can't check-then-park between our
            // decrement and this notify.
            let _guard = self.done_lock.lock().expect("scope lock poisoned");
            self.done.notify_all();
        }
    }
}

/// A structured-concurrency region whose spawned tasks may borrow from
/// the enclosing stack frame (see [`scope`]).
pub struct Scope<'scope> {
    data: Arc<ScopeData>,
    /// Invariant in `'scope`, like `std::thread::Scope`.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` on the shared executor. The closure may borrow anything
    /// that outlives the `scope` call; it runs at most once, possibly on
    /// the scope owner's own thread while it helps.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.data.pending.fetch_add(1, Ordering::AcqRel);
        let data = Arc::clone(&self.data);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `scope` blocks until `pending` reaches zero, so the task
        // — and every `'scope` borrow it captured — outlives its
        // execution. The lifetime is erased only to park the closure in
        // the executor's `'static` queues.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        let wrapped: Task = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut slot = data.panic.lock().expect("scope lock poisoned");
                slot.get_or_insert(payload);
            }
            data.complete_one();
        });
        global().submit(wrapped);
    }
}

/// Runs `f` with a [`Scope`] handle and returns once every task spawned
/// on it has finished. While waiting, the calling thread executes queued
/// pool tasks itself (its own spawns first). A panic — from the body or
/// from any spawned task — is re-thrown here after all tasks complete,
/// leaving the pool fully usable.
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    let data = Arc::new(ScopeData {
        pending: AtomicUsize::new(1),
        panic: Mutex::new(None),
        done_lock: Mutex::new(()),
        done: Condvar::new(),
    });
    let scope = Scope {
        data: Arc::clone(&data),
        _marker: PhantomData,
    };
    let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    data.complete_one(); // the body's own reference
    let exec = global();
    while data.pending.load(Ordering::Acquire) != 0 {
        if let Some(task) = exec.find_task() {
            exec.run_task(task);
            continue;
        }
        let guard = data.done_lock.lock().expect("scope lock poisoned");
        if data.pending.load(Ordering::Acquire) == 0 {
            break;
        }
        // Short timed wait: completions notify promptly; the timeout lets
        // the helper re-poll for *new* tasks submitted while it parked.
        let _ = data
            .done
            .wait_timeout(guard, Duration::from_micros(200))
            .expect("scope lock poisoned");
    }
    let task_panic = data.panic.lock().expect("scope lock poisoned").take();
    match (body, task_panic) {
        (Err(payload), _) => resume_unwind(payload),
        (_, Some(payload)) => resume_unwind(payload),
        (Ok(result), None) => result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_tasks_borrow_stack_data() {
        let mut out = [0usize; 8];
        let base = 10usize;
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                let base = &base;
                s.spawn(move || *slot = i + base);
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i + 10);
        }
    }

    #[test]
    fn nested_scopes_complete() {
        let mut totals = [0usize; 6];
        scope(|s| {
            for (i, t) in totals.iter_mut().enumerate() {
                s.spawn(move || {
                    let mut inner = [0usize; 4];
                    scope(|s2| {
                        for (j, slot) in inner.iter_mut().enumerate() {
                            s2.spawn(move || *slot = i * 4 + j);
                        }
                    });
                    *t = inner.iter().sum();
                });
            }
        });
        for (i, &t) in totals.iter().enumerate() {
            assert_eq!(t, (0..4).map(|j| i * 4 + j).sum::<usize>());
        }
    }

    #[test]
    fn scope_task_panic_propagates_and_pool_survives() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("task boom"));
                s.spawn(|| {});
            });
        }));
        assert!(caught.is_err());
        // Pool still works after the panic.
        let mut ok = false;
        scope(|s| s.spawn(|| ok = true));
        assert!(ok);
    }

    #[test]
    fn scope_body_panic_still_waits_for_tasks() {
        use std::sync::atomic::AtomicBool;
        let ran = AtomicBool::new(false);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| ran.store(true, Ordering::SeqCst));
                panic!("body boom");
            })
        }));
        assert!(caught.is_err());
        assert!(ran.load(Ordering::SeqCst), "spawned task must have run");
    }
}

//! The persistent work-stealing executor behind every parallel operation.
//!
//! One process-wide pool, built lazily on first use: `N − 1` background
//! worker threads (`N` = [`crate::current_num_threads`]'s default
//! resolution at startup), each owning a lock-free Chase-Lev [`Worker`]
//! deque popped LIFO and stolen FIFO. Idle workers park on a condvar
//! guarded by a sleepers counter — `submit` re-checks the counter under
//! the same lock, so a wakeup can never be lost between "queue observed
//! empty" and "parked".
//!
//! Task routing and stealing:
//!
//! * A spawn from a pool worker goes to that worker's own deque
//!   (lock-free push, popped LIFO while cache-hot).
//! * A spawn from an external thread goes to the **owning scope's own
//!   FIFO queue**, registered in a process-wide scope list so workers
//!   can drain it. Keeping external submissions segregated per scope is
//!   what gives the helping owner *scope affinity*: while its tasks are
//!   outstanding it drains its own scope's queue first and only then
//!   helps with unrelated work — a small scope on a loaded pool no
//!   longer waits behind someone else's queue (the old latency
//!   inversion).
//! * A worker that runs dry steals **in batches**: up to half the
//!   victim's queue moves into the thief's own deque in one operation
//!   ([`Stealer::steal_batch_and_pop`]), so fine-grained task splitting
//!   pays one steal round-trip per ~16 tasks instead of one per task.
//!   Victims are scanned in a randomized rotation whose xorshift seed is
//!   fixed per worker index, so the scan order is deterministic for a
//!   given worker yet decorrelated across workers (no thundering herd on
//!   victim 0).
//!
//! Panics inside a spawned task are caught on the worker, stashed in the
//! scope, and re-thrown from `scope()` on the owner's thread — the worker
//! itself survives, so a panicking task never poisons the pool.
//!
//! Safety: `Scope::spawn` erases the closure's `'scope` lifetime to park
//! it in the `'static` worker queues (the same trick real rayon uses).
//! This is sound because `scope()` does not return until the task count
//! reaches zero, so every borrow the closure captured outlives its
//! execution. This module and the `crossbeam` deque are the only unsafe
//! code in the workspace.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// A unit of queued work. Always a wrapper built by [`Scope::spawn`], so
/// executing one can never unwind into the worker loop.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// The local deque of the current pool worker (`None` on external
    /// threads); submissions from a worker go here instead of a scope
    /// queue, and are popped LIFO while still cache-hot.
    static LOCAL: RefCell<Option<Worker<Task>>> = const { RefCell::new(None) };
    /// This worker's index into `Executor::stealers` (skipped when
    /// stealing).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Task-execution nesting depth on this thread; the live-thread gauge
    /// below counts threads, not stack frames.
    static EXEC_DEPTH: Cell<usize> = const { Cell::new(0) };
    /// xorshift64* state for this thread's victim-scan rotation (0 =
    /// not yet seeded).
    static STEAL_RNG: Cell<u64> = const { Cell::new(0) };
}

/// Number of shards the scope registry is split over. Serving-style
/// workloads open thousands of tiny external scopes per second from many
/// threads; a single registry lock serializes every scope entry/exit, so
/// registration is sharded by scope id and only the steal *scan* touches
/// every shard (read locks, held briefly one at a time).
const SCOPE_SHARDS: usize = 8;

/// The process-wide pool.
pub(crate) struct Executor {
    stealers: Vec<Stealer<Task>>,
    /// Queues of the currently active externally-owned scopes, sharded by
    /// scope id (`id % SCOPE_SHARDS`). Within a shard scopes keep
    /// registration order (oldest first, a FIFO fairness bias); each
    /// shard is read-locked on every steal scan and write-locked only on
    /// scope entry/exit — concurrent scope churn on different shards no
    /// longer contends on one lock.
    scopes: [RwLock<Vec<Arc<ScopeData>>>; SCOPE_SHARDS],
    /// Count of parked workers, guarded with [`Self::wake`].
    sleepers: Mutex<usize>,
    wake: Condvar,
    /// Threads currently executing pool tasks (workers + helping callers).
    live: AtomicUsize,
    /// High-water mark of [`Self::live`] — the oversubscription gauge the
    /// hpcq regression tests read via [`crate::max_live_workers`].
    max_live: AtomicUsize,
    /// Successful steal operations (scope-queue or sibling-deque).
    steal_ops: AtomicU64,
    /// Tasks moved by those operations — `steal_tasks / steal_ops > 1`
    /// is batching at work (the `BENCH_scaling.json` metric). Batch
    /// sizes are measured as the thief-deque length delta, so a sibling
    /// raiding the freshly stolen batch within that window makes this a
    /// slight undercount — the raid is then counted by the raider, and
    /// `Steal::Success` stays the crossbeam-compatible return type.
    steal_tasks: AtomicU64,
}

/// The executor, starting its worker threads on first use.
pub(crate) fn global() -> &'static Executor {
    static EXEC: OnceLock<&'static Executor> = OnceLock::new();
    EXEC.get_or_init(|| {
        let workers = crate::default_threads().saturating_sub(1);
        let queues: Vec<Worker<Task>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let exec: &'static Executor = Box::leak(Box::new(Executor {
            stealers: queues.iter().map(Worker::stealer).collect(),
            scopes: std::array::from_fn(|_| RwLock::new(Vec::new())),
            sleepers: Mutex::new(0),
            wake: Condvar::new(),
            live: AtomicUsize::new(0),
            max_live: AtomicUsize::new(0),
            steal_ops: AtomicU64::new(0),
            steal_tasks: AtomicU64::new(0),
        }));
        for (index, queue) in queues.into_iter().enumerate() {
            std::thread::Builder::new()
                .name(format!("postvar-worker-{index}"))
                .spawn(move || exec.worker_main(index, queue))
                .expect("failed to spawn pool worker");
        }
        exec
    })
}

/// One xorshift64* step over the thread-local state, seeding it
/// deterministically on first use: pool workers hash their worker index,
/// external helpers share a fixed seed. Random enough to decorrelate
/// victim scans; deterministic per worker so runs are reproducible.
fn steal_rand() -> u64 {
    STEAL_RNG.with(|c| {
        let mut x = c.get();
        if x == 0 {
            let salt = WORKER_INDEX.with(Cell::get).map_or(u64::MAX, |i| i as u64);
            // splitmix64 of the salt gives a well-mixed nonzero seed.
            let mut z = salt.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x = (z ^ (z >> 31)) | 1;
        }
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        c.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

impl Executor {
    /// Queues a task: onto the calling worker's own deque when the caller
    /// is a pool worker, else onto the owning scope's queue; then wakes a
    /// parked worker if any.
    fn submit(&self, scope: &ScopeData, task: Task) {
        let overflow = LOCAL.with(|l| match l.borrow().as_ref() {
            Some(worker) => {
                worker.push(task);
                None
            }
            None => Some(task),
        });
        if let Some(task) = overflow {
            scope.queue.push(task);
        }
        let sleepers = self.sleepers.lock().expect("executor lock poisoned");
        if *sleepers > 0 {
            self.wake.notify_one();
        }
    }

    /// The registry shard a scope registers in, fixed by its id.
    fn shard_of(scope: &ScopeData) -> usize {
        (scope.id % SCOPE_SHARDS as u64) as usize
    }

    /// Makes an externally-owned scope's queue visible to the workers.
    fn register(&self, scope: &Arc<ScopeData>) {
        self.scopes[Self::shard_of(scope)]
            .write()
            .expect("executor lock poisoned")
            .push(Arc::clone(scope));
    }

    /// Removes a finished scope from the worker-visible list.
    fn unregister(&self, scope: &Arc<ScopeData>) {
        self.scopes[Self::shard_of(scope)]
            .write()
            .expect("executor lock poisoned")
            .retain(|s| !Arc::ptr_eq(s, scope));
    }

    /// Takes from a scope queue: batched into the caller's local deque
    /// when the caller is a pool worker, single-task otherwise (an
    /// external helper has no stealable deque to batch into — hoarding
    /// tasks where no thief can reach them could strand another scope).
    fn take_from_scope(&self, scope: &ScopeData) -> Option<Task> {
        LOCAL.with(|l| {
            let local = l.borrow();
            match local.as_ref() {
                Some(worker) => {
                    let before = worker.len();
                    match scope.queue.steal_batch_and_pop(worker) {
                        Steal::Success(task) => {
                            self.count_steal(worker.len() - before + 1);
                            Some(task)
                        }
                        _ => None,
                    }
                }
                None => match scope.queue.steal() {
                    Steal::Success(task) => {
                        self.count_steal(1);
                        Some(task)
                    }
                    _ => None,
                },
            }
        })
    }

    /// Finds a task. Search order:
    ///
    /// 1. the caller's own deque (LIFO, cache-hot);
    /// 2. `prefer`'s queue — the helping owner's scope affinity;
    /// 3. registered scope queues, oldest scope first;
    /// 4. sibling worker deques, batch-stolen in a randomized rotation.
    fn find_task(&self, prefer: Option<&ScopeData>) -> Option<Task> {
        if let Some(task) = LOCAL.with(|l| l.borrow().as_ref().and_then(Worker::pop)) {
            return Some(task);
        }
        if let Some(scope) = prefer {
            if let Some(task) = self.take_from_scope(scope) {
                return Some(task);
            }
        }
        for shard in &self.scopes {
            let scopes = shard.read().expect("executor lock poisoned");
            for scope in scopes.iter() {
                if let Some(task) = self.take_from_scope(scope) {
                    return Some(task);
                }
            }
        }
        self.steal_from_siblings()
    }

    /// One randomized-rotation scan over the sibling deques, batch-
    /// stealing into the caller's own deque when it has one. `Retry`
    /// results spin on the same victim a bounded number of times, then
    /// move on — the caller's outer loop re-scans anyway.
    fn steal_from_siblings(&self) -> Option<Task> {
        let n = self.stealers.len();
        if n == 0 {
            return None;
        }
        let own = WORKER_INDEX.with(Cell::get);
        let start = (steal_rand() % n as u64) as usize;
        LOCAL.with(|l| {
            let local = l.borrow();
            for k in 0..n {
                let i = (start + k) % n;
                if own == Some(i) {
                    continue;
                }
                for _attempt in 0..4 {
                    let steal = match local.as_ref() {
                        Some(worker) => {
                            let before = worker.len();
                            match self.stealers[i].steal_batch_and_pop(worker) {
                                Steal::Success(task) => {
                                    self.count_steal(worker.len() - before + 1);
                                    return Some(task);
                                }
                                other => other,
                            }
                        }
                        None => match self.stealers[i].steal() {
                            Steal::Success(task) => {
                                self.count_steal(1);
                                return Some(task);
                            }
                            other => other,
                        },
                    };
                    match steal {
                        Steal::Empty => break,
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Success(_) => unreachable!("handled above"),
                    }
                }
            }
            None
        })
    }

    fn count_steal(&self, tasks: usize) {
        self.steal_ops.fetch_add(1, Ordering::Relaxed);
        self.steal_tasks.fetch_add(tasks as u64, Ordering::Relaxed);
    }

    /// Runs one task, maintaining the live-thread gauge (outermost frame
    /// only — helping while waiting must not double-count a thread).
    fn run_task(&self, task: Task) {
        let depth = EXEC_DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        if depth == 0 {
            let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
            self.max_live.fetch_max(live, Ordering::Relaxed);
        }
        task();
        EXEC_DEPTH.with(|d| d.set(d.get() - 1));
        if depth == 0 {
            self.live.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Whether any queue holds a task (checked under the sleep lock before
    /// parking, closing the submit/park race).
    fn has_visible_work(&self) -> bool {
        if self.stealers.iter().any(|s| !s.is_empty()) {
            return true;
        }
        self.scopes.iter().any(|shard| {
            shard
                .read()
                .expect("executor lock poisoned")
                .iter()
                .any(|s| !s.queue.is_empty())
        })
    }

    /// A background worker's whole life: run tasks; park when idle.
    fn worker_main(&'static self, index: usize, queue: Worker<Task>) {
        LOCAL.with(|l| *l.borrow_mut() = Some(queue));
        WORKER_INDEX.with(|w| w.set(Some(index)));
        loop {
            if let Some(task) = self.find_task(None) {
                self.run_task(task);
                continue;
            }
            let mut sleepers = self.sleepers.lock().expect("executor lock poisoned");
            if self.has_visible_work() {
                continue;
            }
            *sleepers += 1;
            // Untimed wait is safe: `submit` pushes *before* taking this
            // lock and notifies whenever `sleepers > 0`, and we re-check
            // the queues under the lock above — a wakeup cannot be lost,
            // and an idle pool costs zero CPU.
            let mut guard = self.wake.wait(sleepers).expect("executor lock poisoned");
            *guard -= 1;
        }
    }

    /// High-water mark of threads concurrently executing pool tasks.
    pub(crate) fn max_live(&self) -> usize {
        self.max_live.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live count.
    pub(crate) fn reset_max_live(&self) {
        self.max_live
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Cumulative `(steal operations, tasks moved)` counters.
    pub(crate) fn steal_stats(&self) -> (u64, u64) {
        (
            self.steal_ops.load(Ordering::Relaxed),
            self.steal_tasks.load(Ordering::Relaxed),
        )
    }
}

/// Shared bookkeeping of one [`scope`] call.
struct ScopeData {
    /// Process-unique scope id; picks the registry shard.
    id: u64,
    /// Tasks spawned from outside the pool land here (workers spawn onto
    /// their own deques instead); registered with the executor while the
    /// scope is externally owned, and drained first by the helping owner.
    queue: Injector<Task>,
    /// Outstanding references: one per unfinished spawned task, plus one
    /// held by the scope body itself.
    pending: AtomicUsize,
    /// First panic payload captured from a spawned task.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    done_lock: Mutex<()>,
    done: Condvar,
}

impl ScopeData {
    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Takes the lock so a waiter can't check-then-park between our
            // decrement and this notify.
            let _guard = self.done_lock.lock().expect("scope lock poisoned");
            self.done.notify_all();
        }
    }
}

/// A structured-concurrency region whose spawned tasks may borrow from
/// the enclosing stack frame (see [`scope`]).
pub struct Scope<'scope> {
    data: Arc<ScopeData>,
    /// Invariant in `'scope`, like `std::thread::Scope`.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` on the shared executor. The closure may borrow anything
    /// that outlives the `scope` call; it runs at most once, possibly on
    /// the scope owner's own thread while it helps.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.data.pending.fetch_add(1, Ordering::AcqRel);
        let data = Arc::clone(&self.data);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `scope` blocks until `pending` reaches zero, so the task
        // — and every `'scope` borrow it captured — outlives its
        // execution. The lifetime is erased only to park the closure in
        // the executor's `'static` queues.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        let wrapped: Task = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut slot = data.panic.lock().expect("scope lock poisoned");
                slot.get_or_insert(payload);
            }
            data.complete_one();
        });
        global().submit(&self.data, wrapped);
    }
}

/// Runs `f` with a [`Scope`] handle and returns once every task spawned
/// on it has finished. While waiting, the calling thread executes queued
/// pool tasks itself — **its own scope's tasks first** (affinity), then
/// anything else. A panic — from the body or from any spawned task — is
/// re-thrown here after all tasks complete, leaving the pool fully
/// usable.
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    static NEXT_SCOPE_ID: AtomicU64 = AtomicU64::new(0);
    let data = Arc::new(ScopeData {
        id: NEXT_SCOPE_ID.fetch_add(1, Ordering::Relaxed),
        queue: Injector::new(),
        pending: AtomicUsize::new(1),
        panic: Mutex::new(None),
        done_lock: Mutex::new(()),
        done: Condvar::new(),
    });
    let exec = global();
    // Scopes owned by a pool worker spawn onto that worker's own deque;
    // only externally-owned scopes route through their queue and need to
    // be visible to the workers.
    let external = LOCAL.with(|l| l.borrow().is_none());
    if external {
        exec.register(&data);
    }
    let scope = Scope {
        data: Arc::clone(&data),
        _marker: PhantomData,
    };
    let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    data.complete_one(); // the body's own reference
    while data.pending.load(Ordering::Acquire) != 0 {
        if let Some(task) = exec.find_task(Some(&data)) {
            exec.run_task(task);
            continue;
        }
        let guard = data.done_lock.lock().expect("scope lock poisoned");
        if data.pending.load(Ordering::Acquire) == 0 {
            break;
        }
        // Short timed wait: completions notify promptly; the timeout lets
        // the helper re-poll for *new* tasks submitted while it parked.
        let _ = data
            .done
            .wait_timeout(guard, Duration::from_micros(200))
            .expect("scope lock poisoned");
    }
    if external {
        exec.unregister(&data);
    }
    let task_panic = data.panic.lock().expect("scope lock poisoned").take();
    match (body, task_panic) {
        (Err(payload), _) => resume_unwind(payload),
        (_, Some(payload)) => resume_unwind(payload),
        (Ok(result), None) => result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_tasks_borrow_stack_data() {
        let mut out = [0usize; 8];
        let base = 10usize;
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                let base = &base;
                s.spawn(move || *slot = i + base);
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i + 10);
        }
    }

    #[test]
    fn nested_scopes_complete() {
        let mut totals = [0usize; 6];
        scope(|s| {
            for (i, t) in totals.iter_mut().enumerate() {
                s.spawn(move || {
                    let mut inner = [0usize; 4];
                    scope(|s2| {
                        for (j, slot) in inner.iter_mut().enumerate() {
                            s2.spawn(move || *slot = i * 4 + j);
                        }
                    });
                    *t = inner.iter().sum();
                });
            }
        });
        for (i, &t) in totals.iter().enumerate() {
            assert_eq!(t, (0..4).map(|j| i * 4 + j).sum::<usize>());
        }
    }

    #[test]
    fn scope_task_panic_propagates_and_pool_survives() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("task boom"));
                s.spawn(|| {});
            });
        }));
        assert!(caught.is_err());
        // Pool still works after the panic.
        let mut ok = false;
        scope(|s| s.spawn(|| ok = true));
        assert!(ok);
    }

    #[test]
    fn scope_body_panic_still_waits_for_tasks() {
        use std::sync::atomic::AtomicBool;
        let ran = AtomicBool::new(false);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| ran.store(true, Ordering::SeqCst));
                panic!("body boom");
            })
        }));
        assert!(caught.is_err());
        assert!(ran.load(Ordering::SeqCst), "spawned task must have run");
    }

    #[test]
    fn scope_registry_does_not_leak() {
        // Other tests in this binary may hold scopes open concurrently,
        // so exact emptiness would be flaky; instead pin that our own 50
        // finished scopes don't accumulate — a broken unregister would
        // leave all 50 behind.
        let exec = global();
        let registered =
            |e: &Executor| -> usize { e.scopes.iter().map(|s| s.read().unwrap().len()).sum() };
        let before = registered(exec);
        for _ in 0..50 {
            scope(|s| {
                for _ in 0..16 {
                    s.spawn(|| {});
                }
            });
        }
        let after = registered(exec);
        assert!(
            after <= before + 8,
            "finished scopes must unregister (before {before}, after {after})"
        );
    }

    #[test]
    fn many_small_external_scopes_across_threads() {
        // The serving hot path: several external threads each churning
        // thousands of tiny scopes per second. Registration is sharded by
        // scope id, so the entry/exit write locks of concurrent scopes
        // land on different shards instead of serializing on one — pin
        // correctness under that churn plus an ultra-conservative
        // throughput floor (a serialized-and-contended registry is orders
        // of magnitude inside the bound; a deadlocked one is not).
        const THREADS: usize = 4;
        const SCOPES_PER_THREAD: usize = 250;
        let start = std::time::Instant::now();
        let totals: Vec<usize> = std::thread::scope(|ts| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    ts.spawn(move || {
                        let mut total = 0usize;
                        for round in 0..SCOPES_PER_THREAD {
                            let mut parts = [0usize; 4];
                            scope(|s| {
                                for (i, p) in parts.iter_mut().enumerate() {
                                    s.spawn(move || *p = t + round + i);
                                }
                            });
                            total += parts.iter().sum::<usize>();
                        }
                        total
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, &total) in totals.iter().enumerate() {
            let want: usize = (0..SCOPES_PER_THREAD).map(|r| 4 * (t + r) + 6).sum();
            assert_eq!(total, want, "thread {t} lost scope results");
        }
        let per_scope = start.elapsed() / (THREADS * SCOPES_PER_THREAD) as u32;
        assert!(
            per_scope < Duration::from_millis(20),
            "tiny external scopes took {per_scope:?} each — registry contention?"
        );
    }

    #[test]
    fn steal_stats_are_monotonic() {
        let exec = global();
        let (ops_before, tasks_before) = exec.steal_stats();
        scope(|s| {
            for _ in 0..256 {
                s.spawn(|| std::hint::black_box(()));
            }
        });
        let (ops_after, tasks_after) = exec.steal_stats();
        assert!(ops_after >= ops_before);
        assert!(tasks_after >= tasks_before);
        assert!(tasks_after - tasks_before >= ops_after - ops_before || ops_after == ops_before);
    }

    #[test]
    fn many_small_scopes_complete() {
        // The fine-grained regime the Chase-Lev deques target: lots of
        // scopes, each with a handful of tiny tasks.
        let mut total = 0usize;
        for round in 0..200 {
            let mut parts = [0usize; 4];
            scope(|s| {
                for (i, p) in parts.iter_mut().enumerate() {
                    s.spawn(move || *p = round + i);
                }
            });
            total += parts.iter().sum::<usize>();
        }
        assert_eq!(total, (0..200).map(|r| 4 * r + 6).sum::<usize>());
    }
}

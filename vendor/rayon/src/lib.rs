//! Offline stand-in for `rayon`, backed by a **persistent work-stealing
//! pool**.
//!
//! The build environment has no registry access, so this shim provides the
//! parallel-iterator surface the workspace uses (`par_iter`,
//! `par_iter_mut`, `par_chunks[_mut]`, `into_par_iter`, and the
//! `map`/`zip`/`enumerate`/`for_each`/`sum`/`collect` combinators) plus a
//! [`scope`]/[`Scope::spawn`] structured-task API, all multiplexed onto
//! one lazily-started executor (see [`executor`]): per-worker **lock-free
//! Chase-Lev** `crossbeam::deque` LIFO queues stolen in batches, per-scope
//! FIFO queues for external submissions (giving helping scope owners
//! affinity for their own tasks), randomized victim scans, and parked
//! workers woken on submit. Terminal operations split their source into
//! contiguous parts (about two runs per available thread, so stealing can
//! rebalance uneven work) and the calling thread executes queued runs
//! itself while it waits — spawn cost is amortized across the process
//! instead of paid per call. Semantics match rayon's indexed parallel
//! iterators — results come back in source order.
//!
//! Determinism guarantees, relied on by the workspace's property tests:
//!
//! * `for_each` and `collect` touch disjoint items, so results are
//!   bit-for-bit identical for any thread count.
//! * `sum` reduces over **fixed-size chunks** ([`SUM_CHUNK`] items) whose
//!   boundaries do not depend on the thread count, and combines the
//!   partial sums in chunk order — so floating-point sums are also
//!   bit-for-bit identical whether run on 1 thread or 64, and across
//!   reuses of the pool.
//!
//! Thread count resolution: `POSTVAR_NUM_THREADS` env var, then
//! `RAYON_NUM_THREADS`, then `std::thread::available_parallelism()` — all
//! read once, when the pool starts. [`with_num_threads`] pins the
//! *fan-out* for a closure (used by tests and benches to compare thread
//! counts in-process; `1` runs inline with no pool traffic at all).
//! [`with_inner_threads`] *caps* the fan-out for a closure without
//! changing what [`current_num_threads`] reports — the cooperation hint
//! coarse-grained schedulers (the `hpcq` device pool) set so a task's
//! inner kernels claim only their fair share of the one shared pool.
//! Nested parallel calls are fine: they queue onto the same executor,
//! which is bounded, instead of spawning recursively.
//!
//! Swap the `[workspace.dependencies]` path entry for the real crate when
//! a registry is available; call sites need no changes.

pub mod executor;

pub use executor::{scope, Scope};

use std::cell::Cell;
use std::sync::OnceLock;

/// Items per partial reduction in [`ParallelIterator::sum`]. Fixed (not
/// thread-count-dependent) so the reduction tree — and therefore the
/// floating-point result — is identical for any thread count.
pub const SUM_CHUNK: usize = 1 << 12;

thread_local! {
    /// Per-thread override installed by [`with_num_threads`] (0 = none).
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Per-thread fan-out cap installed by [`with_inner_threads`]
    /// (0 = uncapped).
    static INNER_CAP: Cell<usize> = const { Cell::new(0) };
}

pub(crate) fn default_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("POSTVAR_NUM_THREADS")
            .or_else(|_| std::env::var("RAYON_NUM_THREADS"))
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
    })
}

/// Number of worker threads parallel operations fan out over.
#[inline]
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o != 0 {
        o
    } else {
        default_threads()
    }
}

/// Runs `f` with the thread count pinned to `n` on the calling thread
/// (restored afterwards, even on panic). Lets tests and benches compare
/// e.g. 1-thread and 4-thread execution in one process.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(n);
        prev
    }));
    f()
}

/// Runs `f` with this thread's parallel fan-out **capped** at `n`, on top
/// of whatever [`current_num_threads`] reports (restored afterwards, even
/// on panic). This is the cooperation hint for coarse-grained schedulers
/// sharing the executor: a device task handling one of `d` concurrent
/// jobs sets `n = threads / d` so its inner kernels split into their fair
/// share of parts instead of flooding the shared queues — replacing the
/// old all-or-nothing "nested calls run sequentially" guard. `n = 1`
/// makes parallel calls inside `f` run inline.
pub fn with_inner_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "inner thread cap must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            INNER_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(INNER_CAP.with(|c| {
        let prev = c.get();
        c.set(n);
        prev
    }));
    f()
}

/// Threads a terminal operation may fan out over right now: the current
/// thread count, clipped by any [`with_inner_threads`] cap.
fn fanout() -> usize {
    let cap = INNER_CAP.with(Cell::get);
    let n = current_num_threads();
    if cap == 0 {
        n
    } else {
        n.min(cap)
    }
}

/// High-water mark of threads concurrently executing pool tasks since the
/// last [`reset_max_live_workers`] — workers plus callers helping while
/// they wait. The `hpcq` oversubscription regression test asserts this
/// stays within [`current_num_threads`] when device- and amplitude-level
/// parallelism share the executor.
pub fn max_live_workers() -> usize {
    executor::global().max_live()
}

/// Resets the [`max_live_workers`] high-water mark to the current live
/// count.
pub fn reset_max_live_workers() {
    executor::global().reset_max_live()
}

/// Cumulative executor steal counters since process start:
/// `(steal_operations, tasks_moved)`. A successful steal moves one task
/// plus — when the thief is a pool worker — up to half the victim's
/// queue into the thief's own deque, so `tasks_moved / steal_operations`
/// above 1 is the batching win made visible (`BENCH_scaling.json`
/// records it as `executor_steal_tasks_per_op`). Monotonic; diff two
/// readings to meter one workload.
pub fn executor_steal_stats() -> (u64, u64) {
    executor::global().steal_stats()
}

/// Splits `iter` into contiguous parts of `part_len` items (last part
/// holds the remainder; a zero-length source yields one empty part).
fn split_by_part_len<P: ParallelIterator>(mut iter: P, part_len: usize) -> Vec<P> {
    let part_len = part_len.max(1);
    let mut parts = Vec::with_capacity(iter.pi_len() / part_len + 1);
    while iter.pi_len() > part_len {
        let (head, tail) = iter.pi_split_at(part_len);
        parts.push(head);
        iter = tail;
    }
    parts.push(iter);
    parts
}

/// Consumes every part by fanning contiguous *runs* of parts out over the
/// persistent executor as scoped tasks — about two runs per available
/// thread, so work stealing can rebalance uneven runs (the adaptive-split
/// policy). Per-part results come back in part order regardless of the
/// thread count or of which worker ran which run; the calling thread
/// executes queued runs itself while it waits.
fn run_parts<P, R, F>(parts: Vec<P>, consume: F) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let threads = fanout().min(parts.len());
    if threads <= 1 {
        return parts.into_iter().map(consume).collect();
    }
    let total = parts.len();
    let nruns = (threads * 2).min(total);
    let mut run_sizes = vec![total / nruns; nruns];
    for s in run_sizes.iter_mut().take(total % nruns) {
        *s += 1;
    }
    let mut parts_iter = parts.into_iter();
    let runs: Vec<Vec<P>> = run_sizes
        .into_iter()
        .map(|sz| parts_iter.by_ref().take(sz).collect())
        .collect();
    // One result slot per run, filled by exactly one task each; slot order
    // — not completion order — defines the combine order.
    let mut slots: Vec<Option<Vec<R>>> = Vec::with_capacity(nruns);
    slots.resize_with(nruns, || None);
    let consume = &consume;
    executor::scope(|s| {
        for (slot, run) in slots.iter_mut().zip(runs) {
            s.spawn(move || *slot = Some(run.into_iter().map(consume).collect()));
        }
    });
    slots
        .into_iter()
        .flat_map(|r| r.expect("scope waits for every run"))
        .collect()
}

/// An indexed parallel iterator: a splittable source with a known length
/// whose parts can be consumed as ordinary sequential iterators.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;
    /// The sequential iterator a part degrades to.
    type Seq: Iterator<Item = Self::Item>;

    /// Remaining item count.
    fn pi_len(&self) -> usize;
    /// Splits into `[0, index)` and `[index, len)`.
    fn pi_split_at(self, index: usize) -> (Self, Self);
    /// Degrades to a sequential iterator.
    fn pi_seq(self) -> Self::Seq;

    /// Maps each item through `f` (applied on the worker threads).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Zips with another parallel iterator (length = the shorter one).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pairs each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Calls `f` on every item across the worker threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        // ~2 parts per thread: enough slack for stealing to rebalance.
        let part_len = self.pi_len().div_ceil(fanout() * 2).max(1);
        let parts = split_by_part_len(self, part_len);
        run_parts(parts, |p| p.pi_seq().for_each(&f));
    }

    /// Sums the items. Reduces over fixed [`SUM_CHUNK`]-item chunks and
    /// combines partials in chunk order, so the result is bit-for-bit
    /// identical for any thread count.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let parts = split_by_part_len(self, SUM_CHUNK);
        run_parts(parts, |p| p.pi_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Collects into `C`, preserving source order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let part_len = self.pi_len().div_ceil(fanout() * 2).max(1);
        let parts = split_by_part_len(self, part_len);
        run_parts(parts, |p| p.pi_seq().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Conversion into a [`ParallelIterator`] (`0..n` ranges, `Vec<T>`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { vec: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeParIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;
    type Seq = std::ops::Range<usize>;

    fn pi_len(&self) -> usize {
        self.end - self.start
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let mid = (self.start + index).min(self.end);
        (
            RangeParIter {
                start: self.start,
                end: mid,
            },
            RangeParIter {
                start: mid,
                end: self.end,
            },
        )
    }

    fn pi_seq(self) -> Self::Seq {
        self.start..self.end
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct VecParIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn pi_len(&self) -> usize {
        self.vec.len()
    }

    fn pi_split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index.min(self.vec.len()));
        (self, VecParIter { vec: tail })
    }

    fn pi_seq(self) -> Self::Seq {
        self.vec.into_iter()
    }
}

/// Parallel iterator over `&[T]` (from `par_iter`).
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index.min(self.slice.len()));
        (SliceParIter { slice: l }, SliceParIter { slice: r })
    }

    fn pi_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Parallel iterator over `&mut [T]` (from `par_iter_mut`).
pub struct SliceParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let mid = index.min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (SliceParIterMut { slice: l }, SliceParIterMut { slice: r })
    }

    fn pi_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// Parallel iterator over immutable chunks (from `par_chunks`).
pub struct ChunksParIter<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksParIter<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at(mid);
        (
            ChunksParIter {
                slice: l,
                chunk: self.chunk,
            },
            ChunksParIter {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn pi_seq(self) -> Self::Seq {
        self.slice.chunks(self.chunk)
    }
}

/// Parallel iterator over mutable chunks (from `par_chunks_mut`).
pub struct ChunksMutParIter<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMutParIter<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (
            ChunksMutParIter {
                slice: l,
                chunk: self.chunk,
            },
            ChunksMutParIter {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn pi_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk)
    }
}

/// Mapping adapter (see [`ParallelIterator::map`]).
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.pi_split_at(index);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }

    fn pi_seq(self) -> Self::Seq {
        self.base.pi_seq().map(self.f)
    }
}

/// Zipping adapter (see [`ParallelIterator::zip`]).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.pi_split_at(index);
        let (bl, br) = self.b.pi_split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn pi_seq(self) -> Self::Seq {
        self.a.pi_seq().zip(self.b.pi_seq())
    }
}

/// Enumerating adapter (see [`ParallelIterator::enumerate`]); indices are
/// global, not part-local.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = EnumerateSeq<P::Seq>;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_split_at(self, index: usize) -> (Self, Self) {
        let split = index.min(self.base.pi_len());
        let (l, r) = self.base.pi_split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + split,
            },
        )
    }

    fn pi_seq(self) -> Self::Seq {
        EnumerateSeq {
            inner: self.base.pi_seq(),
            next: self.offset,
        }
    }
}

/// Sequential form of [`Enumerate`] carrying the global base index.
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

pub mod prelude {
    //! The traits call sites import with `use rayon::prelude::*`.

    pub use crate::{IntoParallelIterator, ParallelIterator};

    /// `par_iter()` / `par_chunks()` on slices (and, via deref, `Vec`).
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over `&T`.
        fn par_iter(&self) -> crate::SliceParIter<'_, T>;
        /// Parallel iterator over `chunk_size`-item subslices.
        fn par_chunks(&self, chunk_size: usize) -> crate::ChunksParIter<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        #[inline]
        fn par_iter(&self) -> crate::SliceParIter<'_, T> {
            crate::SliceParIter { slice: self }
        }

        #[inline]
        fn par_chunks(&self, chunk_size: usize) -> crate::ChunksParIter<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            crate::ChunksParIter {
                slice: self,
                chunk: chunk_size,
            }
        }
    }

    /// `par_iter_mut()` / `par_chunks_mut()` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over `&mut T`.
        fn par_iter_mut(&mut self) -> crate::SliceParIterMut<'_, T>;
        /// Parallel iterator over mutable `chunk_size`-item subslices.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> crate::ChunksMutParIter<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        #[inline]
        fn par_iter_mut(&mut self) -> crate::SliceParIterMut<'_, T> {
            crate::SliceParIterMut { slice: self }
        }

        #[inline]
        fn par_chunks_mut(&mut self, chunk_size: usize) -> crate::ChunksMutParIter<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            crate::ChunksMutParIter {
                slice: self,
                chunk: chunk_size,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = vec![0u8; 8];
        v.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u8;
            }
        });
        assert_eq!(v, [0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn range_into_par_iter() {
        let s: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(s, 45);
    }

    #[test]
    fn large_for_each_touches_every_item_once() {
        let mut v = vec![0u32; 100_000];
        crate::with_num_threads(4, || {
            v.par_iter_mut()
                .enumerate()
                .for_each(|(i, x)| *x = i as u32 + 1);
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn collect_preserves_order_across_threads() {
        let seq: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 3).collect();
        let par: Vec<usize> = crate::with_num_threads(8, || {
            (0..10_000usize).into_par_iter().map(|i| i * 3).collect()
        });
        assert_eq!(seq, par);
    }

    #[test]
    fn float_sum_bit_identical_across_thread_counts() {
        let data: Vec<f64> = (0..50_000).map(|i| (i as f64 * 0.37).sin()).collect();
        let one = crate::with_num_threads(1, || data.par_iter().map(|x| x * x).sum::<f64>());
        let many = crate::with_num_threads(7, || data.par_iter().map(|x| x * x).sum::<f64>());
        assert_eq!(one.to_bits(), many.to_bits());
    }

    #[test]
    fn zip_pairs_by_index() {
        let a: Vec<usize> = (0..5_000).collect();
        let b: Vec<usize> = (0..5_000).map(|i| i * 2).collect();
        let s: usize = crate::with_num_threads(3, || {
            a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).sum()
        });
        assert_eq!(s, (0..5_000usize).map(|i| 3 * i).sum());
    }

    #[test]
    fn nested_parallelism_runs_without_explosion() {
        let rows: Vec<usize> = crate::with_num_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map(|i| {
                    let inner: Vec<usize> = (0..100usize).collect();
                    inner.par_iter().map(|x| x + i).sum::<usize>()
                })
                .collect()
        });
        assert_eq!(rows.len(), 64);
        assert_eq!(rows[0], (0..100usize).sum::<usize>());
    }

    #[test]
    fn with_num_threads_restores() {
        let before = crate::current_num_threads();
        crate::with_num_threads(13, || {
            assert_eq!(crate::current_num_threads(), 13);
        });
        assert_eq!(crate::current_num_threads(), before);
    }

    #[test]
    fn with_num_threads_is_reentrant() {
        let before = crate::current_num_threads();
        crate::with_num_threads(4, || {
            assert_eq!(crate::current_num_threads(), 4);
            crate::with_num_threads(2, || {
                assert_eq!(crate::current_num_threads(), 2);
                crate::with_num_threads(6, || assert_eq!(crate::current_num_threads(), 6));
                assert_eq!(crate::current_num_threads(), 2);
            });
            assert_eq!(crate::current_num_threads(), 4);
            // A panicking inner pin must restore the outer one too.
            let caught = std::panic::catch_unwind(|| {
                crate::with_num_threads(9, || panic!("inner"));
            });
            assert!(caught.is_err());
            assert_eq!(crate::current_num_threads(), 4);
        });
        assert_eq!(crate::current_num_threads(), before);
    }

    #[test]
    fn with_inner_threads_caps_and_restores() {
        let data: Vec<f64> = (0..20_000).map(|i| (i as f64 * 0.7).sin()).collect();
        let free = crate::with_num_threads(4, || data.par_iter().map(|x| x + 1.0).sum::<f64>());
        let capped = crate::with_num_threads(4, || {
            crate::with_inner_threads(1, || {
                // current_num_threads is unchanged — only fan-out is capped.
                assert_eq!(crate::current_num_threads(), 4);
                data.par_iter().map(|x| x + 1.0).sum::<f64>()
            })
        });
        assert_eq!(free.to_bits(), capped.to_bits());
        // Nested caps restore outward.
        crate::with_inner_threads(3, || {
            crate::with_inner_threads(2, || {});
            let s: usize = (0..100usize).into_par_iter().sum();
            assert_eq!(s, 4950);
        });
    }

    #[test]
    fn sum_bit_identical_across_thread_counts_after_pool_reuse() {
        let data: Vec<f64> = (0..60_000).map(|i| (i as f64 * 0.13).cos()).collect();
        let work = || data.par_iter().map(|x| x * 1.5 - x * x).sum::<f64>();
        let reference = crate::with_num_threads(1, work);
        // Three rounds over the *same* persistent pool: reuse must not
        // perturb chunk boundaries or combine order.
        for round in 0..3 {
            for &t in &[1usize, 2, 8] {
                let s = crate::with_num_threads(t, work);
                assert_eq!(
                    s.to_bits(),
                    reference.to_bits(),
                    "round {round}, {t} threads"
                );
            }
        }
    }

    #[test]
    fn panic_propagates_without_poisoning_pool() {
        let caught = std::panic::catch_unwind(|| {
            crate::with_num_threads(4, || {
                (0..2_048usize).into_par_iter().for_each(|i| {
                    if i == 1_500 {
                        panic!("kernel boom");
                    }
                });
            })
        });
        assert!(caught.is_err());
        // The persistent pool must keep working after the unwind.
        let s: usize = crate::with_num_threads(4, || (0..10_000usize).into_par_iter().sum());
        assert_eq!(s, 49_995_000);
        let v: Vec<usize> = crate::with_num_threads(4, || {
            (0..1_000usize).into_par_iter().map(|i| i * 2).collect()
        });
        assert_eq!(v.len(), 1_000);
        assert_eq!(v[999], 1_998);
    }

    #[test]
    fn empty_sources_are_fine() {
        let v: Vec<i32> = Vec::new();
        assert_eq!(v.par_iter().map(|x| x + 1).sum::<i32>(), 0);
        let out: Vec<i32> = v.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }
}

//! Offline stand-in for `rayon`.
//!
//! The build environment has no registry access, so this shim maps the
//! parallel-iterator surface the workspace uses onto *sequential* std
//! iterators: `par_iter()` is `iter()`, `par_chunks_mut(n)` is
//! `chunks_mut(n)`, and every downstream combinator (`zip`, `map`, `sum`,
//! `enumerate`, `for_each`, `collect`) is the ordinary [`Iterator`]
//! method. Semantics are identical; only the parallel speedup is absent.
//! [`current_num_threads`] returns 1 so threshold code like
//! `len / block >= 2 * current_num_threads()` stays meaningful.
//!
//! Swap the `[workspace.dependencies]` path entry for the real crate when
//! a registry is available; call sites need no changes.

/// Number of worker threads (this shim executes sequentially).
#[inline]
pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    /// `into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` on slices (and, via deref, `Vec`).
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        #[inline]
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        #[inline]
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut()` / `par_chunks_mut()` on mutable slices.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        #[inline]
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        #[inline]
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = vec![0u8; 8];
        v.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u8;
            }
        });
        assert_eq!(v, [0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn range_into_par_iter() {
        let s: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(s, 45);
    }
}

//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access. Nothing in the workspace
//! serializes yet — types only *derive* `Serialize`/`Deserialize` so model
//! checkpoints and job manifests can gain wire formats later — so the
//! traits are markers and the derive macros (from the sibling
//! `serde_derive` stand-in) emit marker impls. Swap the
//! `[workspace.dependencies]` path entry for the real crate when a
//! registry is available; call sites need no changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized (no serializer exists in this
/// stand-in; the impl records intent and keeps derives compiling).
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

macro_rules! impl_primitive {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitive!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String);

#[cfg(test)]
mod tests {
    //! Compile coverage for the stand-in derive across item shapes the
    //! real `serde_derive` accepts: plain structs, enums, and generic
    //! items with type, lifetime, and const parameters.
    use crate as serde;
    use serde_derive::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Plain {
        _a: u32,
    }

    #[derive(Serialize, Deserialize)]
    enum Kind {
        _A,
        _B(f64),
    }

    #[derive(Serialize, Deserialize)]
    struct WithType<T: Clone> {
        _v: Vec<T>,
    }

    #[derive(Serialize, Deserialize)]
    struct WithLifetime<'a> {
        _s: &'a str,
    }

    #[derive(Serialize, Deserialize)]
    struct WithConst<const N: usize> {
        _arr: [f64; N],
    }

    #[derive(Serialize, Deserialize)]
    struct Mixed<'a, T: Clone, const N: usize> {
        _s: &'a [T; N],
    }

    fn assert_serialize<T: crate::Serialize>() {}
    fn assert_deserialize<T: for<'de> crate::Deserialize<'de>>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_serialize::<Plain>();
        assert_deserialize::<Plain>();
        assert_serialize::<Kind>();
        assert_serialize::<WithType<u8>>();
        assert_serialize::<WithLifetime<'static>>();
        assert_deserialize::<WithLifetime<'static>>();
        assert_serialize::<WithConst<3>>();
        assert_serialize::<Mixed<'static, f64, 2>>();
        assert_deserialize::<Mixed<'static, f64, 2>>();
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Emits marker-trait impls for the stand-in `serde` crate. With no
//! registry access there is no `syn`/`quote`, so the item header is
//! parsed directly from the raw [`TokenStream`]: skip attributes and
//! visibility, find the `struct`/`enum` keyword, take the name, and
//! capture any generic parameters verbatim.

use proc_macro::{TokenStream, TokenTree};

/// The pieces of an item header needed to emit a generic impl block.
struct ItemHeader {
    name: String,
    /// Generic parameter list without the angle brackets, e.g. `T: Clone`.
    generics: String,
    /// The parameter names only, e.g. `T`, for the `for Name<T>` position.
    generic_args: String,
}

fn parse_header(input: TokenStream) -> ItemHeader {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`), doc comments, and visibility.
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the bracketed attribute body.
                let _ = tokens.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    match tokens.next() {
                        Some(TokenTree::Ident(n)) => break n.to_string(),
                        other => panic!("expected item name after `{s}`, got {other:?}"),
                    }
                }
                // `pub`, `pub(crate)` group, etc. — keep scanning.
            }
            Some(_) => {}
            None => panic!("derive input ended before `struct`/`enum` keyword"),
        }
    };

    // Capture generics if present: everything between the matching `<`...`>`.
    let mut generics = String::new();
    let mut generic_args = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut toks: Vec<TokenTree> = Vec::new();
            for tok in tokens.by_ref() {
                match &tok {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                toks.push(tok);
            }
            // Render via TokenStream's Display, which keeps joint tokens
            // like `'a` glued together (a naive join(" ") yields `' a`).
            generics = toks.iter().cloned().collect::<TokenStream>().to_string();
            // Split the parameter list at top-level commas, then take each
            // parameter's name: `'a` (lifetime), `N` from `const N: usize`,
            // or the leading ident of a type parameter.
            let mut names: Vec<String> = Vec::new();
            let mut segments: Vec<Vec<&TokenTree>> = vec![Vec::new()];
            let mut bound_depth = 0usize;
            for tok in &toks {
                match tok {
                    TokenTree::Punct(p) if p.as_char() == '<' => bound_depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        bound_depth = bound_depth.saturating_sub(1);
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && bound_depth == 0 => {
                        segments.push(Vec::new());
                        continue;
                    }
                    _ => {}
                }
                segments.last_mut().expect("non-empty").push(tok);
            }
            for seg in segments.iter().filter(|s| !s.is_empty()) {
                let name = match (seg.first(), seg.get(1)) {
                    (Some(TokenTree::Punct(p)), Some(TokenTree::Ident(lt)))
                        if p.as_char() == '\'' =>
                    {
                        format!("'{lt}")
                    }
                    (Some(TokenTree::Ident(kw)), Some(TokenTree::Ident(n)))
                        if kw.to_string() == "const" =>
                    {
                        n.to_string()
                    }
                    (Some(TokenTree::Ident(n)), _) => n.to_string(),
                    other => panic!("unsupported generic parameter shape: {other:?}"),
                };
                names.push(name);
            }
            generic_args = names.join(", ");
        }
    }

    ItemHeader {
        name,
        generics,
        generic_args,
    }
}

fn marker_impl(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let header = parse_header(input);
    let mut params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        params.push(lt.to_string());
    }
    if !header.generics.is_empty() {
        params.push(header.generics.clone());
    }
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let ty_generics = if header.generic_args.is_empty() {
        String::new()
    } else {
        format!("<{}>", header.generic_args)
    };
    let code = format!(
        "impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}",
        name = header.name,
    );
    code.parse().expect("generated impl should parse")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "serde::Serialize", None)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "serde::Deserialize<'de>", Some("'de"))
}
